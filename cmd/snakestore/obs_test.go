package main

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	snakes "repro"
)

// eventsResp is the /debug/events response shape.
type eventsResp struct {
	Published   uint64         `json:"published"`
	Overwritten uint64         `json:"overwritten"`
	Capacity    int            `json:"capacity"`
	Returned    int            `json:"returned"`
	Events      []snakes.Event `json:"events"`
}

// healthzObs is the /healthz observability surface: the event-ring block,
// the calibration block (absent until a query has been observed), and the
// SLO block (absent unless -slo configured objectives).
type healthzObs struct {
	Status string `json:"status"`
	Events *struct {
		Published   uint64 `json:"published"`
		Overwritten uint64 `json:"overwritten"`
		Capacity    int    `json:"capacity"`
	} `json:"events"`
	Calibration *struct {
		Classes []snakes.ClassCalibration `json:"classes"`
		Drifted []string                  `json:"drifted"`
	} `json:"calibration"`
	SLOState string `json:"sloState"`
	SLO      *struct {
		State   string                  `json:"state"`
		Classes []snakes.SLOClassStatus `json:"classes"`
	} `json:"slo"`
}

// coldQuery empties the buffer pool and then runs the canonical region
// query, so the request pays every physical read the analytic model
// predicts — the reconciliation the calibration watch scores.
func coldQuery(t *testing.T, srv *server, ts *httptest.Server) queryResponse {
	t.Helper()
	if err := srv.st().Pool().Reset(context.Background()); err != nil {
		t.Fatalf("pool reset: %v", err)
	}
	var q queryResponse
	getJSON(t, ts, chaosRegion, http.StatusOK, &q)
	return q
}

// TestServeWideEventsAndCalibration: every request publishes one wide
// event into the ring behind /debug/events, field filters narrow the
// stream, and a run of cold overlay-free queries calibrates each touched
// class to page and seek ratios of exactly 1.0 — the cost model and the
// physical read path reconcile bit-for-bit, so the gauges are 1, not
// merely near 1.
func TestServeWideEventsAndCalibration(t *testing.T) {
	srv, want := buildServed(t, 64, time.Second, 5*time.Second)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const n = 3
	for i := 0; i < n; i++ {
		q := coldQuery(t, srv, ts)
		if q.Sum == nil || math.Abs(*q.Sum-want) > 1e-9 {
			t.Fatalf("query %d sum = %v, want %v", i, q.Sum, want)
		}
		if q.PagesRead != q.Pages {
			t.Fatalf("cold query %d read %d pages, analytic model predicted %d", i, q.PagesRead, q.Pages)
		}
	}
	getJSON(t, ts, "/query?where=zz%3D0..1", http.StatusBadRequest, nil)
	getJSON(t, ts, "/healthz", http.StatusOK, nil)

	// Unfiltered: everything so far, newest-first. The /debug/events
	// request publishes its own event only after answering, so it does not
	// see itself.
	var er eventsResp
	getJSON(t, ts, "/debug/events", http.StatusOK, &er)
	if er.Capacity != defaultEventCapacity || er.Overwritten != 0 {
		t.Errorf("ring = capacity %d overwritten %d, want %d and 0", er.Capacity, er.Overwritten, defaultEventCapacity)
	}
	if er.Published != n+2 || er.Returned != n+2 {
		t.Errorf("published %d returned %d, want %d each", er.Published, er.Returned, n+2)
	}
	if len(er.Events) != n+2 || er.Events[0].Handler != "healthz" {
		t.Fatalf("unfiltered events not newest-first: %+v", er.Events)
	}
	for i := 1; i < len(er.Events); i++ {
		if er.Events[i].Seq >= er.Events[i-1].Seq {
			t.Errorf("events not ordered by descending seq: %d then %d", er.Events[i-1].Seq, er.Events[i].Seq)
		}
	}

	// The successful queries carry full cost attribution, and on a cold
	// overlay-free store observed cost equals predicted cost exactly.
	// (Fresh struct per decode: omitempty fields absent from a response
	// must read as zero, not as leftovers from the previous one.)
	er = eventsResp{}
	getJSON(t, ts, "/debug/events?handler=query&outcome=ok", http.StatusOK, &er)
	if er.Returned != n {
		t.Fatalf("handler=query outcome=ok returned %d events, want %d", er.Returned, n)
	}
	for _, ev := range er.Events {
		if ev.Class == "" || ev.Status != http.StatusOK || ev.Outcome != snakes.EventOutcomeOK {
			t.Errorf("query event missing attribution: %+v", ev)
		}
		if ev.PredictedPages <= 0 || ev.PagesRead != ev.PredictedPages || ev.SeeksObserved != ev.PredictedSeeks {
			t.Errorf("cold query event does not reconcile: pred %d/%d obs %d/%d",
				ev.PredictedPages, ev.PredictedSeeks, ev.PagesRead, ev.SeeksObserved)
		}
		if ev.Records != 4 || ev.DeltaHits != 0 || ev.LatencyNs < 0 || ev.RequestID == 0 {
			t.Errorf("query event fields off: %+v", ev)
		}
	}
	class := er.Events[0].Class

	// The rejected query is a client_error with the parse failure recorded.
	er = eventsResp{}
	getJSON(t, ts, "/debug/events?outcome=client_error", http.StatusOK, &er)
	if er.Returned != 1 || er.Events[0].Handler != "query" || er.Events[0].Error == "" || er.Events[0].Class != "" {
		t.Errorf("client_error filter = %+v, want the one rejected query with its error", er.Events)
	}

	// limit caps, since_seq floors, and a bad filter is a 400.
	er = eventsResp{}
	getJSON(t, ts, "/debug/events?limit=2", http.StatusOK, &er)
	if er.Returned != 2 {
		t.Errorf("limit=2 returned %d", er.Returned)
	}
	er = eventsResp{}
	getJSON(t, ts, "/debug/events?since_seq=2&handler=query", http.StatusOK, &er)
	for _, ev := range er.Events {
		if ev.Seq <= 2 {
			t.Errorf("since_seq=2 returned seq %d", ev.Seq)
		}
	}
	getJSON(t, ts, "/debug/events?min_latency=bogus", http.StatusBadRequest, nil)

	// Calibration gauges: exactly 1.0, with the full observation weight
	// behind them and nothing flagged.
	samples, _ := scrape(t, ts.URL)
	for _, g := range []string{"page_ratio", "seek_ratio"} {
		key := fmt.Sprintf("snakestore_calibration_%s{class=%q}", g, class)
		if v, ok := samples[key]; !ok || v != 1 {
			t.Errorf("%s = %v (present=%v), want exactly 1", key, v, ok)
		}
	}
	if v := samples[fmt.Sprintf("snakestore_calibration_weight{class=%q}", class)]; v <= 1 {
		t.Errorf("calibration weight = %v, want > 1 after %d observations", v, n)
	}
	if v := samples[fmt.Sprintf("snakestore_calibration_drifted{class=%q}", class)]; v != 0 {
		t.Errorf("calibration drifted = %v on a reconciling store, want 0", v)
	}
	if v := samples["snakestore_calibration_seek_correction"]; v != 1 {
		t.Errorf("seek correction = %v, want exactly 1", v)
	}
	if samples["snakestore_event_published_total"] == 0 || samples["snakestore_event_ring_capacity"] != defaultEventCapacity {
		t.Errorf("event ring families off: published %v capacity %v",
			samples["snakestore_event_published_total"], samples["snakestore_event_ring_capacity"])
	}

	// /healthz carries the same calibration and event-ring view.
	var h healthzObs
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.Events == nil || h.Events.Published == 0 || h.Events.Capacity != defaultEventCapacity {
		t.Errorf("healthz events block = %+v", h.Events)
	}
	if h.Calibration == nil || len(h.Calibration.Classes) != 1 || len(h.Calibration.Drifted) != 0 {
		t.Fatalf("healthz calibration block = %+v, want one clean class", h.Calibration)
	}
	if cc := h.Calibration.Classes[0]; cc.Class != class || cc.PageRatio != 1 || cc.SeekRatio != 1 || cc.Drifted {
		t.Errorf("healthz calibration = %+v, want ratios exactly 1", cc)
	}
	if h.SLO != nil || h.SLOState != "" {
		t.Errorf("healthz grew an SLO block without -slo: %+v", h.SLO)
	}
}

// fakeClock is an injectable server clock: reads return the stored instant
// advanced by step per call, so request latency is a deterministic
// function of the step and jumps in time are explicit.
type fakeClock struct {
	now  atomic.Int64 // unix nanos
	step atomic.Int64 // nanos added per read
}

func (f *fakeClock) Now() time.Time          { return time.Unix(0, f.now.Add(f.step.Load())) }
func (f *fakeClock) Advance(d time.Duration) { f.now.Add(int64(d)) }

// TestServeSLOBurnRateTransitions drives /healthz through the SLO state
// machine deterministically with an injected clock: ok while requests meet
// the objective, burning under an injected latency regression (both burn
// windows far past their thresholds), at-risk once the short window has
// recovered but the hour still holds the damage, and ok again after the
// budget window ages the regression out.
func TestServeSLOBurnRateTransitions(t *testing.T) {
	srv, _ := buildServed(t, 64, time.Second, 5*time.Second)
	fc := &fakeClock{}
	fc.now.Store(time.Date(2026, 8, 7, 12, 0, 30, 0, time.UTC).UnixNano())
	srv.clock = fc.Now
	cfg, err := snakes.ParseSLOSpec("default=5ms@99.9")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.enableSLO(cfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	state := func() string {
		t.Helper()
		var h healthzObs
		getJSON(t, ts, "/healthz", http.StatusOK, &h)
		if h.SLO == nil || h.SLO.State != h.SLOState {
			t.Fatalf("healthz SLO block inconsistent: %+v vs %q", h.SLO, h.SLOState)
		}
		return h.SLOState
	}

	// Phase 1: the clock does not advance inside requests, so every query
	// meets the 5ms objective.
	getJSON(t, ts, chaosRegion, http.StatusOK, nil)
	if got := state(); got != snakes.SLOStateOK {
		t.Fatalf("healthy phase state = %q, want %q", got, snakes.SLOStateOK)
	}

	// Phase 2: a 10ms-per-clock-read regression makes every query blow the
	// objective; with a 99.9%% target the burn rate explodes past both the
	// fast (14.4) and slow (1) thresholds.
	const bad = 4
	fc.step.Store(int64(10 * time.Millisecond))
	for i := 0; i < bad; i++ {
		getJSON(t, ts, chaosRegion, http.StatusOK, nil)
	}
	fc.step.Store(0)
	if got := state(); got != snakes.SLOStateBurning {
		t.Fatalf("regression phase state = %q, want %q", got, snakes.SLOStateBurning)
	}

	samples, _ := scrape(t, ts.URL)
	var class string
	for _, cc := range srv.calib.Snapshot() {
		class = cc.Class
	}
	if class == "" {
		t.Fatal("no class observed")
	}
	// Exact burn expectation, computed with the engine's own float64 steps:
	// 4 bad of 5 in both windows against a 99.9 target.
	pct := 99.9
	target := pct / 100
	wantBurn := (float64(bad) / float64(bad+1)) / (1 - target)
	for _, w := range []string{"5m", "1h"} {
		key := fmt.Sprintf("snakestore_slo_burn_rate{class=%q,window=%q}", class, w)
		if v, ok := samples[key]; !ok || math.Abs(v-wantBurn) > 1e-6*wantBurn {
			t.Errorf("%s = %v (present=%v), want %v", key, v, ok, wantBurn)
		}
	}
	if v := samples[fmt.Sprintf("snakestore_slo_requests_total{class=%q,result=%q}", class, "bad")]; v != bad {
		t.Errorf("slo bad total = %v, want %d", v, bad)
	}
	if v := samples[fmt.Sprintf("snakestore_slo_requests_total{class=%q,result=%q}", class, "good")]; v != 1 {
		t.Errorf("slo good total = %v, want 1", v)
	}
	// The state gauge is one-hot on burning for the damaged class.
	hot := 0.0
	for _, st := range snakes.SLOStates() {
		hot += samples[fmt.Sprintf("snakestore_slo_state{class=%q,state=%q}", class, st)]
	}
	if hot != 1 || samples[fmt.Sprintf("snakestore_slo_state{class=%q,state=%q}", class, snakes.SLOStateBurning)] != 1 {
		t.Errorf("slo state gauges not one-hot burning: sum %v", hot)
	}

	// Phase 3: ten minutes on, the 5m window is clean but the hour window
	// still holds the burn — at risk, not burning.
	fc.Advance(10 * time.Minute)
	if got := state(); got != snakes.SLOStateAtRisk {
		t.Fatalf("post-regression state = %q, want %q", got, snakes.SLOStateAtRisk)
	}

	// Phase 4: past the long window the damage ages out entirely, and fresh
	// healthy traffic confirms ok.
	fc.Advance(2 * time.Hour)
	getJSON(t, ts, chaosRegion, http.StatusOK, nil)
	if got := state(); got != snakes.SLOStateOK {
		t.Fatalf("recovered state = %q, want %q", got, snakes.SLOStateOK)
	}
}

// waitForLogLine polls until some log line satisfies pred.
func waitForLogLine(t *testing.T, buf *syncBuf, what string, pred func(line string) bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(buf.String(), "\n") {
			if pred(line) {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("log never contained %s; log:\n%s", what, buf.String())
}

// TestServeIngestRepairObservability closes the write-path coverage gap:
// POST /ingest and POST /repair get the same span treatment as /query —
// trace ids in their responses, delta-append and scrub spans in their
// retained traces, slow-query log lines when they cross the threshold —
// and both publish attributed wide events.
func TestServeIngestRepairObservability(t *testing.T) {
	srv, _, _, _ := buildIngestServed(t, testDeltaOptions(), testIngestConfig())
	srv.traces = snakes.NewTraceRecorder(snakes.TraceConfig{SampleEvery: 1, SlowThreshold: time.Nanosecond})
	var buf syncBuf
	srv.log = slog.New(slog.NewTextHandler(&buf, nil))
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp := ingestOne(t, ts, []int{1, 2}, "99.0")
	if resp.TraceID == 0 {
		t.Fatal("traced ingest response carries no traceId")
	}
	var detail snakes.TraceDetail
	getJSON(t, ts, "/debug/traces?id="+jsonUint(resp.TraceID), http.StatusOK, &detail)
	kinds := map[string]int{}
	for _, sp := range detail.Spans {
		kinds[sp.Kind]++
	}
	if kinds[snakes.TraceKindRequest] == 0 || kinds[snakes.TraceKindDeltaAppend] == 0 {
		t.Errorf("ingest trace spans = %v, want a request root with a delta_append child", kinds)
	}

	var rep struct {
		TraceID uint64 `json:"traceId"`
		Pages   int64  `json:"pages"`
		OK      bool   `json:"ok"`
	}
	postJSON(t, ts, "/repair", map[string]any{}, http.StatusOK, &rep)
	if rep.TraceID == 0 || !rep.OK || rep.Pages == 0 {
		t.Fatalf("repair response = %+v, want a traced clean sweep", rep)
	}
	getJSON(t, ts, "/debug/traces?id="+jsonUint(rep.TraceID), http.StatusOK, &detail)
	kinds = map[string]int{}
	for _, sp := range detail.Spans {
		kinds[sp.Kind]++
	}
	if kinds[snakes.TraceKindRequest] == 0 || kinds[snakes.TraceKindScrub] == 0 {
		t.Errorf("repair trace spans = %v, want a request root with scrub children", kinds)
	}

	// Both handlers cross the 1ns slow threshold and must emit the
	// slow-query line the /query path gets.
	for _, h := range []string{"handler=ingest", "handler=repair"} {
		h := h
		waitForLogLine(t, &buf, "slow-query with "+h, func(line string) bool {
			return strings.Contains(line, "slow-query") && strings.Contains(line, h)
		})
	}

	// And both published attributed wide events.
	var er eventsResp
	getJSON(t, ts, "/debug/events?handler=ingest", http.StatusOK, &er)
	if er.Returned != 1 || er.Events[0].TraceID != resp.TraceID || er.Events[0].Records != 1 {
		t.Errorf("ingest event = %+v, want trace %d with 1 accepted cell", er.Events, resp.TraceID)
	}
	er = eventsResp{}
	getJSON(t, ts, "/debug/events?handler=repair", http.StatusOK, &er)
	if er.Returned != 1 || er.Events[0].TraceID != rep.TraceID || er.Events[0].Records != rep.Pages {
		t.Errorf("repair event = %+v, want trace %d covering %d pages", er.Events, rep.TraceID, rep.Pages)
	}
}

// TestServeCalibrationDriftAndCompaction is the model-staleness loop end
// to end: a heavy uncompacted overlay absorbs the predicted physical cost
// (cells answer from the delta index, base pages never load), the class's
// calibration ratio collapses and the drift flag raises; one compaction
// tick plus fresh cold traffic decays the stale history out and the flag
// clears with the ratios back inside the threshold.
func TestServeCalibrationDriftAndCompaction(t *testing.T) {
	srv, _, _, _ := buildIngestServed(t, testDeltaOptions(), testIngestConfig())
	// Fast decay so the test converges in a handful of observations:
	// half-life one observation, default threshold, and a minimum weight
	// under the decayed mass's 1/(1-α)=2 asymptote so it is reachable.
	srv.calib = snakes.NewCalibration(0.5, snakes.DefaultCalibrationThreshold, 1.5)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	q := coldQuery(t, srv, ts)
	if q.PagesRead != q.Pages || q.DeltaCells != 0 {
		t.Fatalf("baseline not reconciling: %+v", q)
	}
	snap := srv.calib.Snapshot()
	if len(snap) != 1 || snap[0].PageRatio != 1 || snap[0].Drifted {
		t.Fatalf("baseline calibration = %+v, want one clean class", snap)
	}
	class := snap[0].Class

	// Overlay every cell of the canonical region: merge-on-read now
	// answers the whole query from the delta index.
	for y := 2; y <= 5; y++ {
		ingestOne(t, ts, []int{1, y}, "50.0")
	}
	for i := 0; i < 4; i++ {
		q := coldQuery(t, srv, ts)
		if q.DeltaCells != 4 {
			t.Fatalf("overlay query %d deltaCells = %d, want all 4 cells overlaid", i, q.DeltaCells)
		}
	}
	cc, ok := srv.calib.Class(class)
	if !ok || !cc.Drifted || cc.PageRatio >= 1-snakes.DefaultCalibrationThreshold {
		t.Fatalf("overlay-heavy calibration = %+v, want the class flagged with a collapsed page ratio", cc)
	}
	var h healthzObs
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.Calibration == nil || len(h.Calibration.Drifted) != 1 || h.Calibration.Drifted[0] != class {
		t.Fatalf("healthz drifted = %+v, want [%s]", h.Calibration, class)
	}

	// Compact, then let cold reconciled traffic wash the stale history out.
	if stats := tickIngest(t, srv); stats.PendingCells != 0 {
		t.Fatalf("compaction left %d pending cells", stats.PendingCells)
	}
	for i := 0; i < 8; i++ {
		q := coldQuery(t, srv, ts)
		if q.DeltaCells != 0 {
			t.Fatalf("post-compaction query still hits the overlay: %+v", q)
		}
		if cc, _ = srv.calib.Class(class); !cc.Drifted {
			break
		}
	}
	if cc, _ = srv.calib.Class(class); cc.Drifted {
		t.Fatalf("drift flag never cleared after compaction: %+v", cc)
	}
	if math.Abs(cc.PageRatio-1) > snakes.DefaultCalibrationThreshold || math.Abs(cc.SeekRatio-1) > snakes.DefaultCalibrationThreshold {
		t.Errorf("restored ratios = %+v, want back within the drift threshold", cc)
	}
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.Calibration == nil || len(h.Calibration.Drifted) != 0 {
		t.Errorf("healthz still reports drift after recovery: %+v", h.Calibration)
	}
}
