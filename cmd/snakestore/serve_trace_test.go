package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	snakes "repro"
	"repro/internal/storage"
)

// syncBuf is a concurrency-safe log sink: the middleware writes its access
// and slow-query lines after the handler has already streamed the response,
// so the test must not read the buffer bare.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForLog polls for substr in the buffer; log lines land shortly after
// the response, never synchronously with it.
func waitForLog(t *testing.T, buf *syncBuf, substr string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(buf.String(), substr) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("log never contained %q; log:\n%s", substr, buf.String())
}

// buildServedTrace is buildServed with a trace policy (and no fault
// injection).
func buildServedTrace(t *testing.T, tcfg snakes.TraceConfig) *server {
	t.Helper()
	srv, _ := buildServed(t, 64, time.Second, 5*time.Second)
	srv.traces = snakes.NewTraceRecorder(tcfg)
	return srv
}

// tracesList is the /debug/traces listing shape.
type tracesList struct {
	Enabled bool                  `json:"enabled"`
	Stats   snakes.TraceStats     `json:"stats"`
	Traces  []snakes.TraceSummary `json:"traces"`
}

// TestServeTraceSmoke drives the whole slow-query forensics path against a
// fault-injected store: transient read faults plus a large retry backoff
// manufacture a genuinely slow request, which must come back with a
// traceId, be retained in /debug/traces as slow with retry_backoff spans
// in its tree, emit the slow-query log line, and move the slow-query and
// span-kind metrics.
func TestServeTraceSmoke(t *testing.T) {
	dir := t.TempDir()
	cat := filepath.Join(dir, "cat.json")
	storePath := filepath.Join(dir, "facts.db")
	csvPath := filepath.Join(dir, "facts.csv")
	writeFactsCSV(t, csvPath)
	if err := cmdOptimize([]string{"-dims", "x:2,2 y:3,2", "-page", "64", "-catalog", cat}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-catalog", cat, "-csv", csvPath, "-store", storePath, "-frames", "8"}); err != nil {
		t.Fatal(err)
	}
	c, schema, strat, err := loadCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	o, err := strat.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// Stack the store over a fault injector: the first read fails
	// transiently four times, and a deliberately fat backoff turns those
	// retries into latency the trace must account for.
	pf, err := storage.OpenPageFile(storePath, c.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	fi := storage.NewFaultInjector(pf, 1, storage.Fault{Op: storage.OpRead, Index: 0, Kind: storage.FaultTransient, Repeat: 4})
	store, err := storage.NewFileStoreOn(fi, o, c.BytesPer, 8, c.LoadedBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.Pool().SetRetry(snakes.RetryPolicy{MaxRetries: 6, Backoff: 2 * time.Millisecond})
	adm, err := snakes.NewAdmission(64, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(store, schema, schemaDims(c), adm, 5*time.Second, c.Generation,
		snakes.TraceConfig{SampleEvery: 1, SlowThreshold: 5 * time.Millisecond})
	var buf syncBuf
	srv.log = slog.New(slog.NewTextHandler(&buf, nil))
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var q queryResponse
	getJSON(t, ts, "/query", http.StatusOK, &q)
	if q.TraceID == 0 {
		t.Fatal("traced query response carries no traceId")
	}

	var list tracesList
	getJSON(t, ts, "/debug/traces", http.StatusOK, &list)
	if !list.Enabled {
		t.Error("/debug/traces reports tracing disabled")
	}
	var sum *snakes.TraceSummary
	for i := range list.Traces {
		if list.Traces[i].ID == q.TraceID {
			sum = &list.Traces[i]
		}
	}
	if sum == nil {
		t.Fatalf("trace %d missing from /debug/traces: %+v", q.TraceID, list.Traces)
	}
	if !sum.Slow || sum.Kept != "slow" {
		t.Errorf("fault-delayed query summary = %+v, want kept as slow", *sum)
	}
	if list.Stats.KeptSlow == 0 {
		t.Errorf("recorder stats = %+v, want a kept-slow trace", list.Stats)
	}

	var detail snakes.TraceDetail
	getJSON(t, ts, "/debug/traces?id="+jsonUint(q.TraceID), http.StatusOK, &detail)
	kinds := map[string]int{}
	for _, sp := range detail.Spans {
		kinds[sp.Kind]++
	}
	for _, k := range []string{snakes.TraceKindRequest, snakes.TraceKindAdmission, snakes.TraceKindFragment, snakes.TraceKindPageLoad} {
		if kinds[k] == 0 {
			t.Errorf("trace detail has no %s span: %v", k, kinds)
		}
	}
	if kinds[snakes.TraceKindRetry] != 4 {
		t.Errorf("trace detail has %d retry_backoff spans, want 4 (one per injected fault)", kinds[snakes.TraceKindRetry])
	}

	// Unknown and malformed ids answer 404 and 400, not 200-with-nothing.
	getJSON(t, ts, "/debug/traces?id=999999999", http.StatusNotFound, nil)
	getJSON(t, ts, "/debug/traces?id=bogus", http.StatusBadRequest, nil)

	waitForLog(t, &buf, "slow-query")
	waitForLog(t, &buf, "retry_backoff")

	ren := string(srv.metrics.reg.Render())
	for _, want := range []string{
		"snakestore_slow_query_total 1",
		`snakestore_trace_span_seconds_count{kind="retry_backoff"} 4`,
		"snakestore_build_info{",
	} {
		if !strings.Contains(ren, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// jsonUint formats a trace id for a query string.
func jsonUint(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestServeSlowAlwaysRetained: with head sampling effectively off, a
// slower-than-threshold request must still be retained — tail-based keep
// is not subject to the sampling rate — and its traceId must appear in
// both the response and the access log.
func TestServeSlowAlwaysRetained(t *testing.T) {
	srv := buildServedTrace(t, snakes.TraceConfig{SampleEvery: 1 << 30, SlowThreshold: time.Nanosecond})
	var buf syncBuf
	srv.log = slog.New(slog.NewTextHandler(&buf, nil))
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		var q queryResponse
		getJSON(t, ts, "/query", http.StatusOK, &q)
		if q.TraceID == 0 {
			t.Fatal("slow-threshold tracing returned no traceId")
		}
		var detail snakes.TraceDetail
		getJSON(t, ts, "/debug/traces?id="+jsonUint(q.TraceID), http.StatusOK, &detail)
		if detail.Kept != "slow" || !detail.Slow {
			t.Errorf("request %d: trace %d = %+v, want retained as slow despite 1-in-2^30 sampling", i, q.TraceID, detail.Summary)
		}
		waitForLog(t, &buf, "trace="+jsonUint(q.TraceID))
	}
}

// TestServePanicRecovery: a panicking handler is answered with a typed 500
// JSON error, counted in snakestore_http_panics_total, logged with its
// stack, and the daemon keeps serving.
func TestServePanicRecovery(t *testing.T) {
	srv, want := buildServed(t, 64, time.Second, 5*time.Second)
	var buf syncBuf
	srv.log = slog.New(slog.NewTextHandler(&buf, nil))
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	boom := srv.instrument("query", true, func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	boom(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", rec.Code)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("panic response body %q, want typed JSON error", rec.Body.String())
	}
	waitForLog(t, &buf, "stack=")
	if ren := string(srv.metrics.reg.Render()); !strings.Contains(ren, "snakestore_http_panics_total 1") {
		t.Errorf("panic not counted; metrics:\n%s", ren)
	}

	// The daemon is still healthy: a real query still answers.
	var q queryResponse
	getJSON(t, ts, "/query?where=x%3D1..2&where=y%3D2..6&sum=0", http.StatusOK, &q)
	if q.Sum == nil || *q.Sum != want {
		t.Errorf("query after panic = %+v, want sum %v", q, want)
	}
}
