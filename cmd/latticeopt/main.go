// Command latticeopt computes the optimal (snaked) lattice path for a star
// schema and workload given on the command line.
//
// Usage:
//
//	latticeopt -dims "parts:40,5 supplier:10 time:30,12,7" \
//	           [-workload "0,0,1:0.4 2,1,2:0.6"] [-uniform]
//
// Each dimension is name:fanout,fanout,… from the level above the leaves
// upward. The workload lists class:probability pairs, a class being one
// level per dimension; -uniform spreads probability over all classes.
// The tool prints the optimal lattice path, its expected cost, the snaked
// cost, and the per-class costs of both.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	snakes "repro"
)

func main() {
	dims := flag.String("dims", "parts:40,5 supplier:10 time:30,12,7", "dimensions as name:fanouts")
	wl := flag.String("workload", "", "workload as class:prob pairs, e.g. \"0,0,1:0.4 2,1,2:0.6\"")
	uniform := flag.Bool("uniform", false, "use the uniform workload over all classes")
	flag.Parse()

	schema, err := parseSchema(*dims)
	fail(err)

	var w *snakes.Workload
	switch {
	case *uniform || *wl == "":
		w = schema.UniformWorkload()
	default:
		w, err = parseWorkload(schema, *wl)
		fail(err)
	}
	fail(w.Validate())

	opt, err := snakes.Optimize(w)
	fail(err)
	plain := opt.WithSnaking(false)

	costSnaked, err := opt.ExpectedCost(w)
	fail(err)
	costPlain, err := plain.ExpectedCost(w)
	fail(err)

	fmt.Printf("optimal lattice path: %v\n", plain.Path)
	fmt.Printf("expected cost (seeks/query): %.4f unsnaked, %.4f snaked (benefit %.3fx)\n",
		costPlain, costSnaked, costPlain/costSnaked)
	fmt.Println("\nper-class average cost:")
	fmt.Printf("%-14s %12s %12s %10s\n", "class", "unsnaked", "snaked", "p")
	for _, c := range schema.Classes() {
		fmt.Printf("%-14v %12.4f %12.4f %10.4f\n",
			c, plain.ClassCost(c), opt.ClassCost(c), w.Prob(c))
	}
}

func parseSchema(s string) (*snakes.Schema, error) {
	var dims []snakes.Dimension
	for _, tok := range strings.Fields(s) {
		name, fans, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("dimension %q: want name:fanouts", tok)
		}
		var fanouts []int
		for _, f := range strings.Split(fans, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("dimension %q: %v", tok, err)
			}
			fanouts = append(fanouts, n)
		}
		dims = append(dims, snakes.Dim(name, fanouts...))
	}
	return snakes.BuildSchema(dims...)
}

func parseWorkload(s *snakes.Schema, spec string) (*snakes.Workload, error) {
	w := s.NewWorkload()
	for _, tok := range strings.Fields(spec) {
		cls, prob, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("workload entry %q: want class:prob", tok)
		}
		var c snakes.Class
		for _, lv := range strings.Split(cls, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(lv))
			if err != nil {
				return nil, fmt.Errorf("workload entry %q: %v", tok, err)
			}
			c = append(c, n)
		}
		p, err := strconv.ParseFloat(prob, 64)
		if err != nil {
			return nil, fmt.Errorf("workload entry %q: %v", tok, err)
		}
		w.Set(c, p)
	}
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	return w, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "latticeopt:", err)
		os.Exit(1)
	}
}
