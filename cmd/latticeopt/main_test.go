package main

import (
	"math"
	"testing"
)

func TestParseSchema(t *testing.T) {
	s, err := parseSchema("parts:40,5 supplier:10 time:30,12,7")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NumCells(); got != 200*10*2520 {
		t.Errorf("NumCells = %d", got)
	}
	if got := s.NumClasses(); got != 3*2*4 {
		t.Errorf("NumClasses = %d", got)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []string{
		"",                 // no dimensions
		"parts",            // missing fanouts
		"parts:abc",        // non-numeric fanout
		"parts:40 parts:5", // duplicate name
		"parts:0",          // zero fanout
	}
	for _, c := range cases {
		if _, err := parseSchema(c); err == nil {
			t.Errorf("parseSchema(%q) should fail", c)
		}
	}
}

func TestParseWorkload(t *testing.T) {
	s, err := parseSchema("a:2,2 b:3")
	if err != nil {
		t.Fatal(err)
	}
	w, err := parseWorkload(s, "0,0:3 2,1:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := w.Prob([]int{0, 0}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Prob(0,0) = %v, want 0.75", got)
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	s, err := parseSchema("a:2 b:2")
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"0,0",    // missing probability
		"0,x:1",  // bad level
		"0,0:zz", // bad probability
		"0,0:0",  // zero mass overall
	}
	for _, c := range cases {
		if _, err := parseWorkload(s, c); err == nil {
			t.Errorf("parseWorkload(%q) should fail", c)
		}
	}
}
