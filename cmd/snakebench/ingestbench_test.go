package main

import (
	"testing"
)

// TestIngestBenchSmoke drives every phase of the write-path benchmark —
// read-only baseline, mixed load with a live compactor, drain, exact cold
// reconciliation, and the incremental re-clustering — on a tiny warehouse.
// The deterministic gates (validated sums, predicted == observed) are hard
// errors inside ingestBench; the timing gate (p99 ratio) is asserted only
// on the committed artifact by TestBenchArtifacts.
func TestIngestBenchSmoke(t *testing.T) {
	o := ingestOpts{
		queries:    24,
		frames:     256,
		passes:     2,
		writeEvery: 4,
		writeCells: 8,
		reconcile:  8,
	}
	rep, err := ingestBench(tinyConfig(13), "smoke", o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineReads != o.passes*o.queries {
		t.Errorf("baseline ran %d reads, want %d", rep.BaselineReads, o.passes*o.queries)
	}
	if rep.MixedWrites == 0 || rep.WriteFraction < 0.10 {
		t.Errorf("mixed phase wrote %d ops (%.2f fraction), want >= 10%%", rep.MixedWrites, rep.WriteFraction)
	}
	if rep.CompactedCells == 0 {
		t.Error("compactor folded nothing")
	}
	if rep.MaxTickFraction >= 1 || rep.ReclusterMaxTickFraction >= 1 {
		t.Errorf("a tick covered the whole file: %+v", rep)
	}
	if rep.ReconcileQueries != o.reconcile {
		t.Errorf("reconciled %d queries, want %d", rep.ReconcileQueries, o.reconcile)
	}
	if rep.PredictedPages != rep.ObservedPageReads || rep.PredictedSeeks != rep.ObservedSeeks {
		t.Errorf("model reconciliation drifted: %+v", rep)
	}
	if rep.ReclusterTicks < 2 {
		t.Errorf("recluster finished in %d ticks, want an actually incremental migration", rep.ReclusterTicks)
	}
	if rep.ConvergedRegret > 1.05 {
		t.Errorf("converged regret %.3f above the 1.05 gate", rep.ConvergedRegret)
	}
	if rep.StartRegret < 1 {
		t.Errorf("row-major start regret %.3f below 1: the DP-optimal layout should not lose to it", rep.StartRegret)
	}
	if rep.DeltaHitCells == 0 {
		t.Error("no read observed an overlaid delta cell during the mixed phase")
	}
}
