package main

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// crashEnv, when set in the environment, makes writeReportJSON exit the
// process after writing half of the temp file — simulating a benchmark run
// killed mid-emit. Only the subprocess crash test sets it; see
// TestReportWriterKilledMidEmit.
const crashEnv = "SNAKEBENCH_CRASH_MID_WRITE"

// crashExitCode is the status the crash hook exits with, distinct from the
// real exit codes (0/1/2) so the test can tell the hook fired.
const crashExitCode = 42

// writeReportJSON writes a bench artifact atomically: marshal, write to a
// sibling temp file, fsync, rename over the destination, then fsync the
// parent directory. A run killed mid-emit can leave a stale *.tmp behind,
// but the BENCH_*.json path itself is only ever absent or a complete
// report — never truncated JSON that a later reader would choke on.
func writeReportJSON(path string, report any) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if os.Getenv(crashEnv) != "" {
		f.Write(data[:len(data)/2])
		f.Sync()
		os.Exit(crashExitCode)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself; best-effort, as on the catalog commit path.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}
