package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestAdaptiveBenchReorganizesAndImproves(t *testing.T) {
	a, err := adaptiveBench(tinyConfig(42), "t", 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.RecordsLoaded == 0 {
		t.Fatalf("report moved no data: %+v", a)
	}
	if a.Generation != 1 {
		t.Errorf("generation = %d, want 1 after the reorganization", a.Generation)
	}
	if a.Regret <= 1 {
		t.Errorf("regret = %v, want > 1 (the drifted stream must mispredict the deployed layout)", a.Regret)
	}
	if a.StrategyAfter == "" || a.StrategyAfter == a.StrategyBefore {
		t.Errorf("strategy did not change: before=%q after=%q", a.StrategyBefore, a.StrategyAfter)
	}
	if a.WorkloadAfter == a.WorkloadBefore {
		t.Errorf("drift mix %q equals the design mix", a.WorkloadAfter)
	}
	for _, p := range []AdaptivePhase{a.Before, a.Drift, a.After} {
		if p.Queries != 16 || p.RecordsRead == 0 || p.ObservedSeeks <= 0 || p.PredictedSeeks <= 0 {
			t.Errorf("phase %q incomplete: %+v", p.Name, p)
		}
	}
	// The point of the subsystem: the same drifted stream costs fewer seeks
	// on the re-clustered generation than on the stale one.
	if a.After.ObservedSeeks >= a.Drift.ObservedSeeks {
		t.Errorf("reorg did not pay: drifted stream saw %d seeks before, %d after",
			a.Drift.ObservedSeeks, a.After.ObservedSeeks)
	}
	// On each layout the physical seeks must match the analytic model (cold
	// pool, exact replay).
	if a.Drift.ObservedSeeks != a.Drift.PredictedSeeks {
		t.Errorf("drift phase: observed %d seeks, model predicted %d", a.Drift.ObservedSeeks, a.Drift.PredictedSeeks)
	}
	if a.After.ObservedSeeks != a.After.PredictedSeeks {
		t.Errorf("after phase: observed %d seeks, model predicted %d", a.After.ObservedSeeks, a.After.PredictedSeeks)
	}
	// The forced trigger trace must attribute the migration to its phases:
	// one DP rerun, one migrate span wrapping one copy and one flush.
	for _, kind := range []string{trace.KindDP, trace.KindMigrate, trace.KindCopy, trace.KindFlush} {
		if got := kindCount(a.MigrationPhases, kind); got != 1 {
			t.Errorf("migration phases: %d %s spans, want 1 (%+v)", got, kind, a.MigrationPhases)
		}
	}

	// The same seed must reproduce the data-dependent numbers exactly.
	b, err := adaptiveBench(tinyConfig(42), "t", 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.RecordsLoaded != b.RecordsLoaded ||
		a.Before.ObservedSeeks != b.Before.ObservedSeeks ||
		a.Drift.ObservedSeeks != b.Drift.ObservedSeeks ||
		a.After.ObservedSeeks != b.After.ObservedSeeks ||
		a.Regret != b.Regret {
		t.Errorf("same seed, different measurements:\n%+v\n%+v", a, b)
	}
}

func TestAdaptiveBenchReportJSON(t *testing.T) {
	rep, err := adaptiveBench(tinyConfig(1), "roundtrip", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_adaptive.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"name", "seed", "strategyBefore", "strategyAfter", "workloadBefore",
		"workloadAfter", "regret", "generation", "migrationSeconds",
		"migrationPhases", "beforeDrift", "afterDrift", "afterReorg",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("report missing %q", key)
		}
	}
	if m["name"] != "roundtrip" {
		t.Errorf("name = %v, want roundtrip", m["name"])
	}
}
