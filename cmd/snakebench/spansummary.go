package main

import (
	"sort"

	"repro/internal/trace"
)

// SpanKindSummary aggregates every closed span of one kind across a bench
// run: how many there were and the total wall time inside them. The JSON
// reports carry these so a latency regression is attributable to the phase
// that slowed down — page loads, retry backoff, migration copy — and not
// just visible in the aggregate percentiles.
type SpanKindSummary struct {
	Kind    string  `json:"kind"`
	Count   int     `json:"count"`
	Seconds float64 `json:"seconds"`
}

// spanAccumulator folds sealed traces into per-kind totals.
type spanAccumulator map[string]*SpanKindSummary

// add folds one sealed trace's spans in. The root span is skipped — it
// covers the whole trace and would double-count its children — and so is
// any span that never closed.
func (a spanAccumulator) add(spans []trace.Span) {
	for _, sp := range spans {
		if sp.Parent < 0 || sp.Dur < 0 {
			continue
		}
		s := a[sp.Kind]
		if s == nil {
			s = &SpanKindSummary{Kind: sp.Kind}
			a[sp.Kind] = s
		}
		s.Count++
		s.Seconds += float64(sp.Dur) / 1e9
	}
}

// summaries returns the accumulated kinds in deterministic sorted order.
func (a spanAccumulator) summaries() []SpanKindSummary {
	out := make([]SpanKindSummary, 0, len(a))
	for _, s := range a {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}
