package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBadFlagIsUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "flag provided but not defined") {
		t.Errorf("stderr = %q, want flag diagnostic", errOut.String())
	}
}

func TestRunAnalyticTables(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-figures=false", "-tables", "1,2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"Table 1", "Table 2"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(got, "Table 3") {
		t.Error("Table 3 printed although not requested")
	}
}

func TestRunNothingRequested(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-figures=false", "-tables", ""}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %s", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("output = %q, want none", out.String())
	}
}

func TestRunFigures(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-tables", ""}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Figure 3") {
		t.Error("output missing the Figure 3 lattice")
	}
}

// Flag combinations that would silently ignore input must be usage errors
// (exit 2), not half-executed runs: that is how a benchmark artifact goes
// missing for a whole release without anyone noticing.
func TestRunRejectsPositionalArgs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-figures=false", "stray-arg"}, &out, &errOut); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unexpected arguments") {
		t.Errorf("stderr = %q, want a positional-argument diagnostic", errOut.String())
	}
}

func TestRunRejectsBenchKnobsWithoutMode(t *testing.T) {
	for _, args := range [][]string{
		{"-bench-queries", "8"},
		{"-bench-frames", "64"},
		{"-name", "orphan"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
		if !strings.Contains(errOut.String(), "no effect without a benchmark mode") {
			t.Errorf("run(%v) stderr = %q, want a mode diagnostic", args, errOut.String())
		}
	}
}

func TestRunRejectsSustainedKnobsWithoutSustainedMode(t *testing.T) {
	for _, args := range [][]string{
		{"-sustained-seconds", "1"},
		{"-read-parallel", "2"},
		{"-read-ahead", "4"},
		{"-json", "x.json", "-read-parallel", "2"}, // a mode, but not the sustained one
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
		if !strings.Contains(errOut.String(), "without -sustained-json") {
			t.Errorf("run(%v) stderr = %q, want a sustained-mode diagnostic", args, errOut.String())
		}
	}
}
