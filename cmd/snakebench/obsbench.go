package main

import (
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/ingest"
	"repro/internal/lattice"
	"repro/internal/obsevent"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

// ObsReport is the machine-readable result of the observability benchmark
// (snakebench -obs-json → BENCH_obs.json). It gates the wide-event /
// calibration / SLO stack in four acts:
//
//  1. Cold calibration: every sampled query runs against a reset pool with
//     no overlay, so the physical read path must reconcile with the
//     analytic model exactly — per-class decayed page and seek ratios land
//     on exactly 1.0 (a hard gate, not a tolerance), and the global seek
//     correction the adaptive controller would apply is exactly 1.
//  2. Overlay drift: every loaded cell is replaced through the delta log
//     (identical bytes, so sums stay checkable) and the stream reruns cold.
//     Merged reads serve overlaid cells from memory and skip base pages,
//     so observed cost collapses under predicted cost and every class must
//     be flagged drifted — the calibration watch detecting that the
//     analytic model has gone stale under an uncompacted overlay.
//  3. Compaction recovery: a paced compactor drains the backlog in bounded
//     ticks, after which cold passes must again reconcile exactly and the
//     fresh history must decay every drift flag away.
//  4. SLO burn determinism: a clock-injected engine walks one class
//     through ok → burning → at-risk → ok purely by observation mix and
//     clock jumps, and the reported burn rates must equal the closed-form
//     (bad/total)/(1-target) bit for bit.
//
// Every query in every phase also publishes a wide event into a fixed
// ring; the report cross-checks the ring's published/overwritten counters
// against the loop counts.
type ObsReport struct {
	Name     string `json:"name"`
	Seed     uint64 `json:"seed"`
	Full     bool   `json:"full"`
	Strategy string `json:"strategy"`

	Cells         int   `json:"cells"`
	RecordsLoaded int64 `json:"recordsLoaded"`
	PageBytes     int64 `json:"pageBytes"`
	PoolFrames    int   `json:"poolFrames"`

	CalibrationAlpha     float64 `json:"calibrationAlpha"`
	CalibrationThreshold float64 `json:"calibrationThreshold"`
	CalibrationMinWeight float64 `json:"calibrationMinWeight"`

	ColdQueries        int                         `json:"coldQueries"`
	ColdClasses        int                         `json:"coldClasses"`
	ColdRatiosExact    bool                        `json:"coldRatiosExact"`
	ColdSeekCorrection float64                     `json:"coldSeekCorrection"`
	ColdCalibration    []obsevent.ClassCalibration `json:"coldCalibration"`

	OverlayCells          int      `json:"overlayCells"`
	OverlayQueries        int      `json:"overlayQueries"`
	OverlayDeltaHits      int64    `json:"overlayDeltaHits"`
	OverlaySeekCorrection float64  `json:"overlaySeekCorrection"`
	DriftedClasses        []string `json:"driftedClasses"`
	MinPageRatio          float64  `json:"minPageRatio"`

	CompactionTicks      int64                       `json:"compactionTicks"`
	DrainTicks           int                         `json:"drainTicks"`
	RecoveryPasses       int                         `json:"recoveryPasses"`
	RecoveryQueries      int                         `json:"recoveryQueries"`
	DriftCleared         bool                        `json:"driftCleared"`
	RecoveredCalibration []obsevent.ClassCalibration `json:"recoveredCalibration"`

	EventCapacity     int    `json:"eventCapacity"`
	EventsPublished   uint64 `json:"eventsPublished"`
	EventsOverwritten uint64 `json:"eventsOverwritten"`
	EventsExact       bool   `json:"eventsExact"`

	SLOThresholdMs  float64  `json:"sloThresholdMs"`
	SLOTargetPct    float64  `json:"sloTargetPct"`
	SLOGood         int64    `json:"sloGood"`
	SLOBad          int64    `json:"sloBad"`
	SLOBurn5m       float64  `json:"sloBurn5m"`
	SLOBurn1h       float64  `json:"sloBurn1h"`
	SLOExpectedBurn float64  `json:"sloExpectedBurn"`
	SLOBurnExact    bool     `json:"sloBurnExact"`
	SLOStatePath    []string `json:"sloStatePath"`
}

// Summary is the one-line human rendering of the report.
func (r *ObsReport) Summary() string {
	return fmt.Sprintf("cold ratios exact over %d classes (%d queries); overlay drifted %d/%d classes (min page ratio %.3f, %d delta hits); drained in %d ticks, drift cleared after %d passes; SLO path %s (burn %.1f exact=%v); %d events published (%d overwritten)",
		r.ColdClasses, r.ColdQueries,
		len(r.DriftedClasses), r.ColdClasses, r.MinPageRatio, r.OverlayDeltaHits,
		r.DrainTicks, r.RecoveryPasses,
		strings.Join(r.SLOStatePath, "→"), r.SLOBurn5m, r.SLOBurnExact,
		r.EventsPublished, r.EventsOverwritten)
}

// WriteFile writes the report as indented JSON, atomically.
func (r *ObsReport) WriteFile(path string) error {
	return writeReportJSON(path, r)
}

// obsOpts are the knobs of one observability bench run.
type obsOpts struct {
	queries      int // distinct sampled query regions
	frames       int // buffer pool frames
	overlayPass  int // cold passes under the full overlay
	recoverLimit int // max cold passes allowed to clear drift after compaction
}

// defaultObsOpts is the `make bench-obs` configuration.
func defaultObsOpts() obsOpts {
	return obsOpts{
		queries:      192,
		frames:       4096,
		overlayPass:  2,
		recoverLimit: 8,
	}
}

// benchCalibAlpha halves calibration history every observation, so both
// drift and recovery resolve within a few passes of the sampled stream.
// The decayed-weight asymptote is 1/(1-alpha) = 2, so the minimum weight
// for flagging must sit below it; 1.5 means two observations suffice.
const (
	benchCalibAlpha     = 0.5
	benchCalibMinWeight = 1.5
)

// pointLabel renders a query class the way the daemon's metrics do: its
// per-dim levels comma-joined, e.g. "0,2".
func pointLabel(c lattice.Point) string {
	parts := make([]string, len(c))
	for i, lv := range c {
		parts[i] = strconv.Itoa(lv)
	}
	return strings.Join(parts, ",")
}

// obsBench runs the observability benchmark. The reconciliation, drift,
// recovery, and burn-rate expectations are hard gates: a miss returns an
// error, not a report.
func obsBench(cfg tpcd.Config, name string, o obsOpts) (*ObsReport, error) {
	bs, err := buildBenchStore(cfg, o.frames)
	if err != nil {
		return nil, err
	}
	defer bs.Close()
	ctx := context.Background()

	regions, classes, err := sampleRegionsWithClasses(bs.ds, bs.w, bs.order, o.queries)
	if err != nil {
		return nil, err
	}

	rep := &ObsReport{
		Name:                 name,
		Seed:                 cfg.Seed,
		Strategy:             bs.order.Name,
		Cells:                len(bs.ds.BytesPerCell),
		RecordsLoaded:        bs.recordsLoaded,
		PageBytes:            cfg.PageBytes,
		PoolFrames:           o.frames,
		CalibrationAlpha:     benchCalibAlpha,
		CalibrationThreshold: obsevent.DefaultCalibrationThreshold,
		CalibrationMinWeight: benchCalibMinWeight,
	}

	calib := obsevent.NewCalibration(benchCalibAlpha, obsevent.DefaultCalibrationThreshold, benchCalibMinWeight)
	ring := obsevent.NewRing(64)
	rep.EventCapacity = ring.Capacity()
	published := 0

	// coldPass runs the whole sampled stream cold (pool reset per query),
	// feeds every query into the calibration watch, and publishes its wide
	// event. With requireExact the analytic model must reconcile exactly —
	// the same gate the ingest benchmark applies after compaction.
	coldPass := func(phase string, requireExact bool) (int64, error) {
		var deltaHits int64
		for i, r := range regions {
			if err := bs.fs.Pool().Reset(ctx); err != nil {
				return 0, err
			}
			pred := bs.fs.Layout().Query(r)
			var tally storage.PoolTally
			tctx := storage.WithPoolTally(ctx, &tally)
			var records int64
			q0 := time.Now()
			_, _, err := bs.fs.SumCtx(tctx, r, func(rec []byte) float64 {
				records++
				return decodeMeasure(rec)
			})
			if err != nil {
				return 0, err
			}
			lat := time.Since(q0)
			obsPages := tally.Stats().Misses
			obsSeeks := tally.Seeks()
			if requireExact && (obsPages != pred.Pages || obsSeeks != pred.Seeks) {
				return 0, fmt.Errorf("obsbench: %s query %d (%v): observed %d pages / %d seeks, model predicts %d / %d",
					phase, i, r, obsPages, obsSeeks, pred.Pages, pred.Seeks)
			}
			lbl := pointLabel(classes[i])
			calib.Observe(lbl, pred.Pages, obsPages, pred.Seeks, obsSeeks)
			deltaHits += tally.DeltaHits()
			ring.Publish(&obsevent.Event{
				TimeUnixNs:     q0.UnixNano(),
				Handler:        "bench",
				Method:         "RUN",
				Path:           "/bench/" + phase,
				Status:         200,
				Outcome:        obsevent.OutcomeOK,
				LatencyNs:      lat.Nanoseconds(),
				Class:          lbl,
				PredictedPages: pred.Pages,
				PredictedSeeks: pred.Seeks,
				PagesRead:      obsPages,
				SeeksObserved:  obsSeeks,
				DeltaHits:      tally.DeltaHits(),
				Records:        records,
			})
			published++
		}
		return deltaHits, nil
	}

	// Phase 1: cold calibration. Overlay-free and cold, predicted must
	// equal observed on every query, so every class ratio is exactly 1.
	if _, err := coldPass("cold", true); err != nil {
		return nil, err
	}
	rep.ColdQueries = len(regions)
	rep.ColdCalibration = calib.Snapshot()
	rep.ColdClasses = len(rep.ColdCalibration)
	rep.ColdRatiosExact = true
	for _, v := range rep.ColdCalibration {
		if v.PageRatio != 1 || v.SeekRatio != 1 {
			return nil, fmt.Errorf("obsbench: cold class %s ratios %v/%v, want exactly 1/1", v.Class, v.PageRatio, v.SeekRatio)
		}
		if v.Drifted {
			return nil, fmt.Errorf("obsbench: cold class %s flagged drifted at ratio 1", v.Class)
		}
	}
	rep.ColdSeekCorrection = calib.SeekCorrection()
	if rep.ColdSeekCorrection != 1 {
		return nil, fmt.Errorf("obsbench: cold seek correction %v, want exactly 1", rep.ColdSeekCorrection)
	}

	// Phase 2: overlay drift. Replace every loaded cell through the delta
	// log with its own bytes: sums stay identical, but merged reads now
	// serve whole cells from the overlay and skip their base pages, so
	// observed cost collapses under the model's prediction.
	// Asking for twice the cell count drives prepareWritePayloads' stride
	// to 1, so every loaded cell gets a payload and no read can fall
	// through to base pages.
	payloads, err := prepareWritePayloads(ctx, bs.fs, bs.framed, 2*len(bs.framed))
	if err != nil {
		return nil, err
	}
	dlog, err := ingest.Open(filepath.Join(bs.dir, "obsbench.delta"), 0, ingest.Options{Policy: ingest.SyncNone})
	if err != nil {
		return nil, err
	}
	defer dlog.Close()
	bs.fs.SetOverlay(dlog.Overlay())
	var writeBytes int64
	for _, p := range payloads {
		if err := dlog.Put(p.cell, p.framed); err != nil {
			return nil, err
		}
		bs.fs.InvalidateCellPlans(p.cell)
		writeBytes += int64(len(p.framed))
	}
	rep.OverlayCells = len(payloads)

	for p := 0; p < o.overlayPass; p++ {
		hits, err := coldPass("overlay", false)
		if err != nil {
			return nil, err
		}
		rep.OverlayDeltaHits += hits
	}
	rep.OverlayQueries = o.overlayPass * len(regions)
	if rep.OverlayDeltaHits == 0 {
		return nil, fmt.Errorf("obsbench: overlay phase hit no delta cells")
	}
	rep.DriftedClasses = calib.DriftedClasses()
	if len(rep.DriftedClasses) != rep.ColdClasses {
		return nil, fmt.Errorf("obsbench: %d of %d classes drifted under a full overlay, want all", len(rep.DriftedClasses), rep.ColdClasses)
	}
	rep.MinPageRatio = 1.0
	for _, v := range calib.Snapshot() {
		if v.PageRatio < rep.MinPageRatio {
			rep.MinPageRatio = v.PageRatio
		}
	}
	if rep.MinPageRatio >= 1-rep.CalibrationThreshold {
		return nil, fmt.Errorf("obsbench: min page ratio %.3f did not fall below the %.2f drift threshold", rep.MinPageRatio, 1-rep.CalibrationThreshold)
	}
	rep.OverlaySeekCorrection = calib.SeekCorrection()
	if rep.OverlaySeekCorrection >= 1 {
		return nil, fmt.Errorf("obsbench: overlay seek correction %v, want < 1", rep.OverlaySeekCorrection)
	}

	// Phase 3: compaction recovery. Drain the backlog in bounded ticks,
	// then decay the stale history out with fresh cold passes — each of
	// which must again reconcile exactly — until no class is flagged.
	comp := ingest.NewCompactor(ingest.CompactorConfig{
		RegionCells:     64,
		MaxBytesPerTick: writeBytes/8 + 1,
	})
	for dlog.PendingCells() > 0 {
		rep.DrainTicks++
		if _, err := comp.Tick(ctx, bs.fs, dlog); err != nil {
			return nil, err
		}
	}
	rep.CompactionTicks, _, _ = comp.Ticks()
	for p := 0; p < o.recoverLimit && !rep.DriftCleared; p++ {
		if _, err := coldPass("recovery", true); err != nil {
			return nil, err
		}
		rep.RecoveryPasses++
		rep.DriftCleared = len(calib.DriftedClasses()) == 0
	}
	rep.RecoveryQueries = rep.RecoveryPasses * len(regions)
	if !rep.DriftCleared {
		return nil, fmt.Errorf("obsbench: drift not cleared after %d recovery passes: %v", rep.RecoveryPasses, calib.DriftedClasses())
	}
	rep.RecoveredCalibration = calib.Snapshot()

	rep.EventsPublished = ring.Published()
	rep.EventsOverwritten = ring.Overwritten()
	rep.EventsExact = rep.EventsPublished == uint64(published) &&
		published == rep.ColdQueries+rep.OverlayQueries+rep.RecoveryQueries
	if !rep.EventsExact {
		return nil, fmt.Errorf("obsbench: ring published %d events, loops ran %d queries", rep.EventsPublished, published)
	}

	if err := obsSLOPhase(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// obsSLOPhase walks a clock-injected SLO engine through every state
// deterministically and checks the burn rates against the closed form.
// The target is computed at runtime (pct/100) so the expectation goes
// through the same IEEE operations as the engine, making exact equality
// the correct assertion rather than a tolerance.
func obsSLOPhase(rep *ObsReport) error {
	pct := 99.0
	threshold := 5 * time.Millisecond
	obj := obsevent.Objective{Threshold: threshold, Target: pct / 100}
	rep.SLOThresholdMs = float64(threshold.Nanoseconds()) / 1e6
	rep.SLOTargetPct = pct

	base := time.Date(2026, 1, 1, 12, 0, 30, 0, time.UTC)
	offset := time.Duration(0)
	eng := obsevent.NewSLOEngineWithClock(
		obsevent.SLOConfig{HasDefault: true, Default: obj},
		func() time.Time { return base.Add(offset) },
	)
	const class = "bench"
	record := func() { rep.SLOStatePath = append(rep.SLOStatePath, eng.State(class)) }

	// One good request: healthy.
	eng.Observe(class, time.Millisecond, false)
	record()

	// Four threshold-busting requests: both windows burn at
	// (4/5)/(1-0.99) = 80x budget, far past the 14.4 fast-burn line.
	const bad = 4
	for i := 0; i < bad; i++ {
		eng.Observe(class, 2*threshold, false)
	}
	record()
	rep.SLOBurn5m, rep.SLOBurn1h = eng.BurnRates(class)
	rep.SLOExpectedBurn = (float64(bad) / float64(bad+1)) / (1 - obj.Target)
	rep.SLOBurnExact = rep.SLOBurn5m == rep.SLOExpectedBurn && rep.SLOBurn1h == rep.SLOExpectedBurn
	if !rep.SLOBurnExact {
		return fmt.Errorf("obsbench: burn rates %v/%v, closed form predicts exactly %v", rep.SLOBurn5m, rep.SLOBurn1h, rep.SLOExpectedBurn)
	}
	rep.SLOGood, rep.SLOBad = eng.Totals(class)
	if rep.SLOGood != 1 || rep.SLOBad != bad {
		return fmt.Errorf("obsbench: SLO totals %d good / %d bad, want 1 / %d", rep.SLOGood, rep.SLOBad, bad)
	}

	// Ten minutes later the burst has aged out of the short window but
	// still burns the hour budget: at risk, not burning.
	offset += 10 * time.Minute
	record()

	// Two hours later both windows are clean again.
	offset += 2 * time.Hour
	record()

	want := []string{obsevent.SLOStateOK, obsevent.SLOStateBurning, obsevent.SLOStateAtRisk, obsevent.SLOStateOK}
	if len(rep.SLOStatePath) != len(want) {
		return fmt.Errorf("obsbench: SLO state path %v, want %v", rep.SLOStatePath, want)
	}
	for i := range want {
		if rep.SLOStatePath[i] != want[i] {
			return fmt.Errorf("obsbench: SLO state path %v, want %v", rep.SLOStatePath, want)
		}
	}
	return nil
}
