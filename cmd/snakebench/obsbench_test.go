package main

import "testing"

// TestObsBenchSmoke drives every phase of the observability benchmark on
// a tiny warehouse. All of its interesting assertions are hard gates
// inside obsBench — exact cold ratios, all-classes drift under a full
// overlay, drift cleared after compaction, bit-exact burn rates — so the
// smoke only has to run it and sanity-check the report shape.
func TestObsBenchSmoke(t *testing.T) {
	o := obsOpts{
		queries:      12,
		frames:       256,
		overlayPass:  2,
		recoverLimit: 8,
	}
	rep, err := obsBench(tinyConfig(11), "smoke", o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColdQueries != o.queries || rep.ColdClasses == 0 {
		t.Errorf("cold phase ran %d queries over %d classes, want %d over >0", rep.ColdQueries, rep.ColdClasses, o.queries)
	}
	if !rep.ColdRatiosExact || rep.ColdSeekCorrection != 1 {
		t.Errorf("cold calibration not exact: %+v", rep)
	}
	if len(rep.DriftedClasses) != rep.ColdClasses || rep.OverlayDeltaHits == 0 {
		t.Errorf("overlay phase drifted %d/%d classes with %d delta hits", len(rep.DriftedClasses), rep.ColdClasses, rep.OverlayDeltaHits)
	}
	if !rep.DriftCleared || rep.RecoveryPasses == 0 || rep.DrainTicks == 0 {
		t.Errorf("recovery phase incomplete: %+v", rep)
	}
	for _, v := range rep.RecoveredCalibration {
		if v.Drifted {
			t.Errorf("class %s still drifted in the recovered snapshot", v.Class)
		}
	}
	if !rep.SLOBurnExact || len(rep.SLOStatePath) != 4 {
		t.Errorf("SLO phase: burn exact=%v, path %v", rep.SLOBurnExact, rep.SLOStatePath)
	}
	if !rep.EventsExact || rep.EventsPublished == 0 {
		t.Errorf("event ring: exact=%v published=%d", rep.EventsExact, rep.EventsPublished)
	}
	wantOverwritten := uint64(0)
	if rep.EventsPublished > uint64(rep.EventCapacity) {
		wantOverwritten = rep.EventsPublished - uint64(rep.EventCapacity)
	}
	if rep.EventsOverwritten != wantOverwritten {
		t.Errorf("overwritten %d with %d published into %d slots", rep.EventsOverwritten, rep.EventsPublished, rep.EventCapacity)
	}
}
