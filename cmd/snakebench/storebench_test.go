package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tpcd"
	"repro/internal/trace"
)

// kindCount returns the span count recorded for kind, 0 when absent.
func kindCount(s []SpanKindSummary, kind string) int {
	for _, k := range s {
		if k.Kind == kind {
			return k.Count
		}
	}
	return 0
}

// tinyConfig is a warehouse small enough for the full build+load+query
// cycle to run in milliseconds.
func tinyConfig(seed uint64) tpcd.Config {
	return tpcd.Config{
		Manufacturers: 2, PartsPerMfr: 2, Suppliers: 2,
		Years: 1, MonthsPerYear: 2, DaysPerMonth: 2,
		RecordBytes: 16, PageBytes: 64, MeanRecordsPerCell: 2, Seed: seed,
	}
}

// TestConfigHelpersHonorSeed: every generated dataset must use the -seed
// flag; the validate path used to hardcode Seed 1 regardless.
func TestConfigHelpersHonorSeed(t *testing.T) {
	if got := validateConfig(7).Seed; got != 7 {
		t.Errorf("validateConfig seed = %d, want 7", got)
	}
	reduced := warehouseConfig(false, 7)
	if reduced.Seed != 7 {
		t.Errorf("warehouseConfig(reduced) seed = %d, want 7", reduced.Seed)
	}
	if reduced.PartsPerMfr != 8 || reduced.Years != 4 {
		t.Errorf("warehouseConfig(reduced) = %+v, want reduced dimensions", reduced)
	}
	full := warehouseConfig(true, 9)
	if full.Seed != 9 {
		t.Errorf("warehouseConfig(full) seed = %d, want 9", full.Seed)
	}
	if def := tpcd.DefaultConfig(); full.PartsPerMfr != def.PartsPerMfr || full.Years != def.Years {
		t.Errorf("warehouseConfig(full) = %+v, want the paper's dimensions", full)
	}
}

func TestRunBadSeedIsUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-seed", "notanumber"}, &out, &errOut); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}

func TestStoreBenchDeterministicAndMeasured(t *testing.T) {
	a, err := storeBench(tinyConfig(42), "t", 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.RecordsLoaded == 0 || a.RecordsRead == 0 {
		t.Fatalf("report moved no data: %+v", a)
	}
	if a.Queries != 12 {
		t.Errorf("queries = %d, want 12", a.Queries)
	}
	if a.PredictedPages <= 0 || a.ObservedPageReads <= 0 || a.PredictedSeeks <= 0 || a.ObservedSeeks <= 0 {
		t.Errorf("cost accounting missing: %+v", a)
	}
	if a.Pool.Misses == 0 {
		t.Errorf("pool stats empty: %+v", a.Pool)
	}
	if a.LatencyMsP50 <= 0 || a.LatencyMsP99 < a.LatencyMsP50 || a.LatencyMsMax < a.LatencyMsP99 {
		t.Errorf("latency percentiles not ordered: %+v", a)
	}
	// Every query ran traced against a cold pool, so the span summary must
	// account for contiguous fragments and physical page loads.
	if kindCount(a.SpanSummary, trace.KindFragment) == 0 || kindCount(a.SpanSummary, trace.KindPageLoad) == 0 {
		t.Errorf("span summary missing read-path kinds: %+v", a.SpanSummary)
	}
	if got := int64(kindCount(a.SpanSummary, trace.KindPageLoad)); got != a.ObservedPageReads {
		t.Errorf("page_load spans = %d, want one per observed page read (%d)", got, a.ObservedPageReads)
	}

	// The same seed must reproduce the data-dependent numbers exactly.
	b, err := storeBench(tinyConfig(42), "t", 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.RecordsLoaded != b.RecordsLoaded || a.RecordsRead != b.RecordsRead ||
		a.PredictedPages != b.PredictedPages || a.PredictedSeeks != b.PredictedSeeks ||
		a.ObservedPageReads != b.ObservedPageReads || a.ObservedSeeks != b.ObservedSeeks {
		t.Errorf("same seed, different measurements:\n%+v\n%+v", a, b)
	}
	// Span counts are data-dependent (seconds are not) and must reproduce.
	for _, kind := range []string{trace.KindFragment, trace.KindPageLoad} {
		if kindCount(a.SpanSummary, kind) != kindCount(b.SpanSummary, kind) {
			t.Errorf("same seed, different %s span counts:\n%+v\n%+v", kind, a.SpanSummary, b.SpanSummary)
		}
	}

	// A different seed generates a different warehouse.
	c, err := storeBench(tinyConfig(43), "t", 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.RecordsLoaded == c.RecordsLoaded && a.RecordsRead == c.RecordsRead && a.ObservedSeeks == c.ObservedSeeks {
		t.Errorf("seeds 42 and 43 produced identical measurements: %+v", a)
	}
}

func TestBenchReportJSON(t *testing.T) {
	rep, err := storeBench(tinyConfig(1), "roundtrip", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_roundtrip.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"name", "seed", "strategy", "queries", "queriesPerSecond",
		"latencyMsP50", "latencyMsP99", "predictedPages", "observedPageReads",
		"predictedSeeks", "observedSeeks", "pool", "spanSummary",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("report missing %q", key)
		}
	}
	if m["name"] != "roundtrip" {
		t.Errorf("name = %v, want roundtrip", m["name"])
	}
	if !strings.Contains(rep.Summary(), "queries") {
		t.Errorf("summary %q unreadable", rep.Summary())
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(s, 0.5); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := percentile(s, 0.99); got != 9 {
		t.Errorf("p99 = %v, want 9 (nearest rank)", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}
