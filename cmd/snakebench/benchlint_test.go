package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchArtifactSchema validates one committed BENCH_<suffix>.json artifact:
// decode strictly (unknown fields are an error, so schema drift between the
// reports and the committed artifacts cannot pass silently) and run the
// artifact's own sanity gate.
type benchArtifactSchema struct {
	decode func(dec *json.Decoder) (any, error)
	check  func(v any) error
}

func schemaOf[T any](check func(*T) error) benchArtifactSchema {
	return benchArtifactSchema{
		decode: func(dec *json.Decoder) (any, error) {
			v := new(T)
			if err := dec.Decode(v); err != nil {
				return nil, err
			}
			return v, nil
		},
		check: func(v any) error { return check(v.(*T)) },
	}
}

// benchArtifactSchemas maps the BENCH_<suffix>.json suffix to its schema.
// A committed artifact whose suffix is not listed here fails the lint:
// either it is a stray file to delete, or a new benchmark mode forgot to
// register its report shape.
var benchArtifactSchemas = map[string]benchArtifactSchema{
	"store": schemaOf(func(r *BenchReport) error {
		if r.Queries <= 0 || r.QueriesPerSecond <= 0 {
			return fmt.Errorf("store artifact ran no queries: %+v", r)
		}
		return nil
	}),
	"local": schemaOf(func(r *BenchReport) error {
		if r.Queries <= 0 {
			return fmt.Errorf("store artifact ran no queries: %+v", r)
		}
		return nil
	}),
	"sustained": schemaOf(func(r *SustainedReport) error {
		if !r.IdenticalAtParallelismOne {
			return fmt.Errorf("Parallelism=1 was not bit-identical to the sequential path")
		}
		if r.ColdSpeedup < 3 {
			return fmt.Errorf("cold speedup %.2fx is below the 3x gate", r.ColdSpeedup)
		}
		if r.PredictedPages != r.ObservedPageReads || r.PredictedSeeks != r.ObservedSeeks {
			return fmt.Errorf("analytic model did not reconcile: pages %d/%d, seeks %d/%d",
				r.PredictedPages, r.ObservedPageReads, r.PredictedSeeks, r.ObservedSeeks)
		}
		if r.SustainedQueries <= 0 {
			return fmt.Errorf("open-loop phase ran no queries")
		}
		return nil
	}),
	"adaptive": schemaOf(func(r *AdaptiveBenchReport) error { return nil }),
	"chaos":    schemaOf(func(r *ChaosReport) error { return nil }),
	"obs": schemaOf(func(r *ObsReport) error {
		if r.ColdQueries <= 0 || r.ColdClasses <= 0 {
			return fmt.Errorf("obs artifact ran no cold queries: %+v", r)
		}
		if !r.ColdRatiosExact || r.ColdSeekCorrection != 1 {
			return fmt.Errorf("cold calibration was not exact (seek correction %v)", r.ColdSeekCorrection)
		}
		for _, v := range r.ColdCalibration {
			if v.PageRatio != 1 || v.SeekRatio != 1 || v.Drifted {
				return fmt.Errorf("cold class %s: ratios %v/%v drifted=%v, want exactly 1/1 unflagged", v.Class, v.PageRatio, v.SeekRatio, v.Drifted)
			}
		}
		if len(r.DriftedClasses) != r.ColdClasses || r.OverlayDeltaHits <= 0 {
			return fmt.Errorf("overlay phase drifted %d of %d classes (%d delta hits), want all", len(r.DriftedClasses), r.ColdClasses, r.OverlayDeltaHits)
		}
		if r.MinPageRatio >= 1-r.CalibrationThreshold {
			return fmt.Errorf("min page ratio %.3f never crossed the drift threshold", r.MinPageRatio)
		}
		if !r.DriftCleared || r.DrainTicks <= 0 {
			return fmt.Errorf("compaction did not restore calibration (drained in %d ticks, cleared=%v)", r.DrainTicks, r.DriftCleared)
		}
		for _, v := range r.RecoveredCalibration {
			if v.Drifted {
				return fmt.Errorf("class %s still drifted after recovery", v.Class)
			}
		}
		if !r.SLOBurnExact {
			return fmt.Errorf("burn rates %v/%v diverged from the closed form %v", r.SLOBurn5m, r.SLOBurn1h, r.SLOExpectedBurn)
		}
		if want := "ok,burning,at-risk,ok"; strings.Join(r.SLOStatePath, ",") != want {
			return fmt.Errorf("SLO state path %v, want %s", r.SLOStatePath, want)
		}
		if !r.EventsExact {
			return fmt.Errorf("event ring counters diverged from the query loops: %+v", r)
		}
		return nil
	}),
	"ingest": schemaOf(func(r *IngestReport) error {
		if r.WriteFraction < 0.10 {
			return fmt.Errorf("mixed phase wrote only %.1f%% of operations, below the 10%% floor", 100*r.WriteFraction)
		}
		if r.ReadP99MixedMs > 2*r.ReadP99BaselineMs {
			return fmt.Errorf("mixed-load read p99 %.3fms exceeds 2x the read-only baseline %.3fms", r.ReadP99MixedMs, r.ReadP99BaselineMs)
		}
		if r.MaxTickFraction >= 1 || r.ReclusterMaxTickFraction >= 1 {
			return fmt.Errorf("a single tick rewrote the whole file (compaction %.2f, recluster %.2f)", r.MaxTickFraction, r.ReclusterMaxTickFraction)
		}
		if r.ConvergedRegret > 1.05 {
			return fmt.Errorf("incremental re-clustering converged to %.3fx the DP-optimal expected seeks, above the 1.05 gate", r.ConvergedRegret)
		}
		if r.PredictedPages != r.ObservedPageReads || r.PredictedSeeks != r.ObservedSeeks {
			return fmt.Errorf("cold path did not reconcile after compaction: pages %d/%d, seeks %d/%d",
				r.PredictedPages, r.ObservedPageReads, r.PredictedSeeks, r.ObservedSeeks)
		}
		if r.ReconcileQueries <= 0 || r.DeltaHitCells <= 0 {
			return fmt.Errorf("ingest artifact skipped a phase: %+v", r)
		}
		return nil
	}),
}

// TestBenchArtifacts lints every committed BENCH_*.json at the repo root:
// each must parse completely under its registered schema — a truncated,
// stray, or schema-drifted artifact fails loudly instead of rotting. This
// is the guard against the failure mode where an artifact silently never
// lands (or lands half-written) and nobody notices for a whole release.
func TestBenchArtifacts(t *testing.T) {
	root := filepath.Join("..", "..")
	matches, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no BENCH_*.json artifacts at the repo root; the benchmark trajectory has been dropped (check .gitignore)")
	}
	for _, path := range matches {
		base := filepath.Base(path)
		suffix := strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json")
		schema, ok := benchArtifactSchemas[suffix]
		if !ok {
			t.Errorf("%s: unknown artifact suffix %q — register its schema in benchArtifactSchemas or delete the stray file", base, suffix)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v", base, err)
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		v, err := schema.decode(dec)
		if err != nil {
			t.Errorf("%s: does not parse under its schema (truncated or drifted?): %v", base, err)
			continue
		}
		// Exactly one JSON document, nothing trailing: a concatenated or
		// half-overwritten artifact fails here.
		if dec.More() {
			t.Errorf("%s: trailing data after the report document", base)
			continue
		}
		if err := schema.check(v); err != nil {
			t.Errorf("%s: %v", base, err)
		}
	}
}

// TestSustainedBenchSmoke drives every phase of the sustained benchmark —
// equivalence gate, preparation pass, timed cold passes, per-query model
// reconciliation, and a short open-loop phase — on a tiny warehouse. The
// deterministic gates (bit-identity, predicted == observed) are hard
// errors inside sustainedBench, so this smoke catches a broken parallel
// read path; the speedup itself is timing and is asserted only on the
// committed artifact by TestBenchArtifacts.
func TestSustainedBenchSmoke(t *testing.T) {
	o := sustainedOpts{
		queries:   16,
		frames:    256,
		parallel:  3,
		readahead: 8,
		passes:    2,
		seconds:   0.2,
		inflight:  2,
		reconcile: 8,
		loadFrac:  0.25,
	}
	rep, err := sustainedBench(tinyConfig(11), "smoke", o)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IdenticalAtParallelismOne {
		t.Error("Parallelism=1 equivalence did not run")
	}
	if rep.ReconcileQueries != o.reconcile {
		t.Errorf("reconciled %d queries, want %d", rep.ReconcileQueries, o.reconcile)
	}
	if rep.PredictedPages != rep.ObservedPageReads || rep.PredictedSeeks != rep.ObservedSeeks {
		t.Errorf("model reconciliation drifted: %+v", rep)
	}
	if rep.SustainedQueries == 0 || rep.AchievedQPS <= 0 {
		t.Errorf("open-loop phase ran nothing: %+v", rep)
	}
	if rep.BaselineQPS <= 0 || rep.ParallelQPS <= 0 {
		t.Errorf("cold comparison missing: %+v", rep)
	}
}
