package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/linear"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

// chaosScrubRate is the paced scrub rate (pages/sec) the overhead phase
// runs at — the serving daemon's default, so the measured p99 overhead is
// what a default `snakestore serve` deployment would see.
const chaosScrubRate = 128.0

// ChaosReport is the machine-readable result of one self-healing
// benchmark run, written as BENCH_chaos.json. It answers the three
// operational questions about the parity layer: how fast repair runs, how
// long a corruption burst leaves the store unhealthy, and what the paced
// scrubber costs the query stream's tail latency.
type ChaosReport struct {
	Name     string `json:"name"`
	Seed     uint64 `json:"seed"`
	Full     bool   `json:"full"`
	Strategy string `json:"strategy"`

	Cells         int   `json:"cells"`
	RecordsLoaded int64 `json:"recordsLoaded"`
	PageBytes     int64 `json:"pageBytes"`
	TotalPages    int64 `json:"totalPages"`
	PoolFrames    int   `json:"poolFrames"`

	ParityGroup        int     `json:"parityGroup"`
	ParityOverheadPct  float64 `json:"parityOverheadPct"`
	ParityBuildSeconds float64 `json:"parityBuildSeconds"`

	// Repair throughput and time-to-healthy after one seeded burst of
	// repairable corruption (one fault in as many parity groups as exist).
	BurstFaults          int     `json:"burstFaults"`
	RepairedPages        int64   `json:"repairedPages"`
	RepairSeconds        float64 `json:"repairSeconds"`
	RepairPagesPerSecond float64 `json:"repairPagesPerSecond"`
	// TimeToHealthySeconds spans fault injection → repair sweep → clean
	// verify, the interval /healthz would report degraded/healing.
	TimeToHealthySeconds float64 `json:"timeToHealthySeconds"`

	// Query tail latency with and without a concurrent paced scrub.
	Queries              int     `json:"queries"`
	ScrubRatePagesPerSec float64 `json:"scrubRatePagesPerSec"`
	BaselineLatencyMsP50 float64 `json:"baselineLatencyMsP50"`
	BaselineLatencyMsP99 float64 `json:"baselineLatencyMsP99"`
	ScrubLatencyMsP50    float64 `json:"scrubLatencyMsP50"`
	ScrubLatencyMsP99    float64 `json:"scrubLatencyMsP99"`
	ScrubOverheadP99Pct  float64 `json:"scrubOverheadP99Pct"`
}

// Summary is the one-line human rendering of the report.
func (r *ChaosReport) Summary() string {
	return fmt.Sprintf("repair %.0f pages/s, time-to-healthy %.3fs after %d faults, scrub p99 %.3f→%.3f ms (%+.1f%%)",
		r.RepairPagesPerSecond, r.TimeToHealthySeconds, r.BurstFaults,
		r.BaselineLatencyMsP99, r.ScrubLatencyMsP99, r.ScrubOverheadP99Pct)
}

// WriteFile writes the report as indented JSON, atomically.
func (r *ChaosReport) WriteFile(path string) error {
	return writeReportJSON(path, r)
}

// chaosBench builds the warehouse store with a parity sidecar, then runs
// the three self-healing measurements: a baseline query stream, the same
// stream under a paced concurrent scrub, and a seeded corruption burst
// timed from injection to a clean verify.
func chaosBench(cfg tpcd.Config, name string, queries, frames int) (*ChaosReport, error) {
	if queries <= 0 {
		return nil, fmt.Errorf("chaosbench: need a positive query count, got %d", queries)
	}
	if cfg.RecordBytes < 8 {
		return nil, fmt.Errorf("chaosbench: RecordBytes = %d cannot hold the 8-byte measure", cfg.RecordBytes)
	}
	ds, err := tpcd.Build(cfg)
	if err != nil {
		return nil, err
	}
	w, err := ds.Workload(tpcd.PaperWorkload7())
	if err != nil {
		return nil, err
	}
	opt, err := core.Optimal(w)
	if err != nil {
		return nil, err
	}
	o, err := linear.FromPath(ds.Schema, opt.Path, true)
	if err != nil {
		return nil, err
	}
	framed := paddedBytes(ds)

	dir, err := os.MkdirTemp("", "snakebench-chaos")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.db")
	fs, err := storage.CreateFileStore(path, o, framed, int(cfg.PageBytes), frames)
	if err != nil {
		return nil, err
	}
	defer fs.Close()

	rep := &ChaosReport{
		Name:                 name,
		Seed:                 cfg.Seed,
		Strategy:             o.Name,
		Cells:                len(ds.BytesPerCell),
		PageBytes:            cfg.PageBytes,
		PoolFrames:           frames,
		ParityGroup:          storage.DefaultParityGroup,
		ScrubRatePagesPerSec: chaosScrubRate,
	}
	shape := ds.Schema.LeafCounts()
	nSupp, nTime := shape[1], shape[2]
	payload := make([]byte, cfg.RecordBytes)
	var loadErr error
	ds.EachRecord(func(li *tpcd.LineItem) bool {
		part, supp, day := li.Cell()
		binary.LittleEndian.PutUint64(payload[:8], math.Float64bits(li.ExtendedPrice))
		if loadErr = fs.PutRecord((part*nSupp+supp)*nTime+day, payload); loadErr != nil {
			return false
		}
		rep.RecordsLoaded++
		return true
	})
	if loadErr != nil {
		return nil, loadErr
	}
	rep.TotalPages = fs.Layout().TotalPages()

	t0 := time.Now()
	if err := fs.WriteParity(storage.ParityPath(path), storage.DefaultParityGroup); err != nil {
		return nil, err
	}
	rep.ParityBuildSeconds = time.Since(t0).Seconds()
	groups := (rep.TotalPages + int64(storage.DefaultParityGroup) - 1) / int64(storage.DefaultParityGroup)
	rep.ParityOverheadPct = 100 * float64(groups) / float64(rep.TotalPages)

	regions, err := sampleRegions(ds, w, o, queries)
	if err != nil {
		return nil, err
	}
	runStream := func() ([]float64, error) {
		lat := make([]float64, 0, len(regions))
		for _, r := range regions {
			q0 := time.Now()
			if err := fs.ReadQueryCtx(context.Background(), r, func(cell int, record []byte) error {
				return nil
			}); err != nil {
				return nil, err
			}
			lat = append(lat, time.Since(q0).Seconds())
		}
		sort.Float64s(lat)
		return lat, nil
	}

	// Phase 1: baseline tail latency, no scrub running.
	base, err := runStream()
	if err != nil {
		return nil, err
	}

	// Phase 2: the same stream with a paced scrub walking the store
	// concurrently, the way the serving daemon runs it.
	sctx, scancel := context.WithCancel(context.Background())
	scrubDone := make(chan struct{})
	go func() {
		defer close(scrubDone)
		batch := int64(chaosScrubRate) / 10
		if batch < 1 {
			batch = 1
		}
		tick := time.NewTicker(time.Duration(float64(batch) / chaosScrubRate * float64(time.Second)))
		defer tick.Stop()
		cursor := int64(0)
		for {
			select {
			case <-sctx.Done():
				return
			case <-tick.C:
			}
			for i := int64(0); i < batch; i++ {
				_ = fs.CheckPage(cursor)
				cursor = (cursor + 1) % rep.TotalPages
			}
		}
	}()
	scrubbed, err := runStream()
	scancel()
	<-scrubDone
	if err != nil {
		return nil, err
	}

	ms := func(s float64) float64 { return s * 1e3 }
	rep.Queries = len(regions)
	rep.BaselineLatencyMsP50 = ms(percentile(base, 0.50))
	rep.BaselineLatencyMsP99 = ms(percentile(base, 0.99))
	rep.ScrubLatencyMsP50 = ms(percentile(scrubbed, 0.50))
	rep.ScrubLatencyMsP99 = ms(percentile(scrubbed, 0.99))
	if rep.BaselineLatencyMsP99 > 0 {
		rep.ScrubOverheadP99Pct = 100 * (rep.ScrubLatencyMsP99 - rep.BaselineLatencyMsP99) / rep.BaselineLatencyMsP99
	}

	// Phase 3: one seeded repairable burst — a fault in every parity group
	// — timed from injection through the repair sweep to a clean verify.
	sched := chaos.PlanRepairable(int64(cfg.Seed), int(groups), rep.TotalPages, storage.DefaultParityGroup, int(cfg.PageBytes))
	rep.BurstFaults = len(sched.Events)
	t1 := time.Now()
	if err := sched.Apply(path); err != nil {
		return nil, err
	}
	r0 := time.Now()
	sweep, err := fs.RepairCtx(context.Background())
	if err != nil {
		return nil, err
	}
	rep.RepairSeconds = time.Since(r0).Seconds()
	rep.RepairedPages = int64(len(sweep.Repaired))
	if rep.RepairSeconds > 0 {
		// Throughput of the sweep itself: every page is checked, the
		// damaged ones reconstructed.
		rep.RepairPagesPerSecond = float64(sweep.Pages) / rep.RepairSeconds
	}
	if !sweep.OK() {
		return nil, fmt.Errorf("chaosbench: repairable burst did not repair: %d failures", len(sweep.Failed))
	}
	vrep, err := fs.Verify()
	if err != nil {
		return nil, err
	}
	if !vrep.OK() {
		return nil, fmt.Errorf("chaosbench: store not clean after repair: %v", vrep.Err())
	}
	rep.TimeToHealthySeconds = time.Since(t1).Seconds()
	return rep, nil
}
