package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/trace"
)

// AdaptivePhase is one measured query stream of the adaptive benchmark,
// always executed against a cold buffer pool so the observed seeks are the
// physical cost of the layout, not of the cache.
type AdaptivePhase struct {
	Name             string  `json:"name"`
	Queries          int     `json:"queries"`
	RecordsRead      int64   `json:"recordsRead"`
	WallSeconds      float64 `json:"wallSeconds"`
	QueriesPerSecond float64 `json:"queriesPerSecond"`

	PredictedPages    int64 `json:"predictedPages"`
	ObservedPageReads int64 `json:"observedPageReads"`
	PredictedSeeks    int64 `json:"predictedSeeks"`
	ObservedSeeks     int64 `json:"observedSeeks"`
}

// AdaptiveBenchReport is the machine-readable result of the adaptive
// reorganization scenario, written as BENCH_adaptive.json: the same store
// measured three times — under its design workload, under a drifted
// workload, and again after the reorganizer migrated it onto the drifted
// workload's optimum — plus the policy evidence (regret) that triggered
// the move.
type AdaptiveBenchReport struct {
	Name           string `json:"name"`
	Seed           uint64 `json:"seed"`
	Full           bool   `json:"full"`
	StrategyBefore string `json:"strategyBefore"`
	StrategyAfter  string `json:"strategyAfter"`
	WorkloadBefore string `json:"workloadBefore"`
	WorkloadAfter  string `json:"workloadAfter"`

	Cells         int   `json:"cells"`
	RecordsLoaded int64 `json:"recordsLoaded"`
	PageBytes     int64 `json:"pageBytes"`
	PoolFrames    int   `json:"poolFrames"`

	Regret           float64 `json:"regret"`
	Generation       int     `json:"generation"`
	MigrationSeconds float64 `json:"migrationSeconds"`

	// MigrationPhases breaks MigrationSeconds down by traced span kind —
	// dp, migrate, copy, flush — from a forced trace around the trigger, so
	// a slow reorganization is attributable to its phase.
	MigrationPhases []SpanKindSummary `json:"migrationPhases,omitempty"`

	Before AdaptivePhase `json:"beforeDrift"`
	Drift  AdaptivePhase `json:"afterDrift"`
	After  AdaptivePhase `json:"afterReorg"`
}

// Summary is the one-line human rendering of the report.
func (r *AdaptiveBenchReport) Summary() string {
	return fmt.Sprintf("regret %.2f → gen %d in %.2fs; seeks/query before=%.1f drifted=%.1f reorged=%.1f (qps %.0f/%.0f/%.0f)",
		r.Regret, r.Generation, r.MigrationSeconds,
		seeksPerQuery(r.Before), seeksPerQuery(r.Drift), seeksPerQuery(r.After),
		r.Before.QueriesPerSecond, r.Drift.QueriesPerSecond, r.After.QueriesPerSecond)
}

func seeksPerQuery(p AdaptivePhase) float64 {
	if p.Queries == 0 {
		return 0
	}
	return float64(p.ObservedSeeks) / float64(p.Queries)
}

// WriteFile writes the report as indented JSON, atomically.
func (r *AdaptiveBenchReport) WriteFile(path string) error {
	return writeReportJSON(path, r)
}

// driftMix picks the Section-6.2 mix whose optimum the deployed strategy
// serves worst — the adversarial drift target — returning the mix and the
// analytic regret the deployed path would suffer under it.
func driftMix(ds *tpcd.Dataset, deployed *core.Path) (tpcd.Mix, float64, error) {
	var best tpcd.Mix
	bestRegret := 0.0
	for _, m := range tpcd.Mixes() {
		w, err := ds.Workload(m)
		if err != nil {
			return best, 0, err
		}
		opt, err := core.Optimal(w)
		if err != nil {
			return best, 0, err
		}
		if opt.Cost <= 0 {
			continue
		}
		regret := cost.OfPath(deployed, true).ExpectedCost(w) / opt.Cost
		if regret > bestRegret {
			bestRegret, best = regret, m
		}
	}
	if bestRegret == 0 {
		return best, 0, fmt.Errorf("adaptivebench: no drift mix found")
	}
	return best, bestRegret, nil
}

// adaptiveBench runs the reorganization scenario end to end: build the
// warehouse clustered for workload A, measure an A stream and then a
// drifted B stream on it (cold pool each time), feed the B stream's classes
// to the adaptive controller, let it migrate the store onto B's optimum,
// and measure the same B stream again on the new generation. All sampling
// is deterministic in the seed.
func adaptiveBench(cfg tpcd.Config, name string, queries, frames int) (*AdaptiveBenchReport, error) {
	if queries <= 0 {
		return nil, fmt.Errorf("adaptivebench: need a positive query count, got %d", queries)
	}
	if cfg.RecordBytes < 8 {
		return nil, fmt.Errorf("adaptivebench: RecordBytes = %d cannot hold the 8-byte measure", cfg.RecordBytes)
	}
	ds, err := tpcd.Build(cfg)
	if err != nil {
		return nil, err
	}
	mixA := tpcd.PaperWorkload7()
	wA, err := ds.Workload(mixA)
	if err != nil {
		return nil, err
	}
	optA, err := core.Optimal(wA)
	if err != nil {
		return nil, err
	}
	orderA, err := linear.FromPath(ds.Schema, optA.Path, true)
	if err != nil {
		return nil, err
	}
	mixB, _, err := driftMix(ds, optA.Path)
	if err != nil {
		return nil, err
	}
	wB, err := ds.Workload(mixB)
	if err != nil {
		return nil, err
	}

	framed := paddedBytes(ds)
	dir, err := os.MkdirTemp("", "snakebench-adaptive")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.db")
	fs, err := storage.CreateFileStore(path, orderA, framed, int(cfg.PageBytes), frames)
	if err != nil {
		return nil, err
	}

	rep := &AdaptiveBenchReport{
		Name:           name,
		Seed:           cfg.Seed,
		StrategyBefore: orderA.Name,
		WorkloadBefore: mixA.String(),
		WorkloadAfter:  mixB.String(),
		Cells:          len(ds.BytesPerCell),
		PageBytes:      cfg.PageBytes,
		PoolFrames:     frames,
	}
	shape := ds.Schema.LeafCounts()
	nSupp, nTime := shape[1], shape[2]
	payload := make([]byte, cfg.RecordBytes)
	var loadErr error
	ds.EachRecord(func(li *tpcd.LineItem) bool {
		part, supp, day := li.Cell()
		binary.LittleEndian.PutUint64(payload[:8], math.Float64bits(li.ExtendedPrice))
		if loadErr = fs.PutRecord((part*nSupp+supp)*nTime+day, payload); loadErr != nil {
			return false
		}
		rep.RecordsLoaded++
		return true
	})
	if loadErr != nil {
		fs.Close()
		return nil, loadErr
	}

	// reopenCold closes the store and reopens it so each phase starts with
	// an empty pool: the seek numbers compare layouts, not cache states.
	order := orderA
	reopenCold := func(p string) error {
		loaded := fs.LoadedBytes()
		if err := fs.Close(); err != nil {
			return err
		}
		fs, err = storage.OpenFileStore(p, order, framed, int(cfg.PageBytes), frames, loaded)
		return err
	}

	regionsA, _, err := sampleRegionsWithClasses(ds, wA, orderA, queries)
	if err != nil {
		fs.Close()
		return nil, err
	}
	regionsB, classesB, err := sampleRegionsWithClasses(ds, wB, orderA, queries)
	if err != nil {
		fs.Close()
		return nil, err
	}

	if err := reopenCold(path); err != nil {
		return nil, err
	}
	if rep.Before, err = runPhase(fs, "before drift", regionsA); err != nil {
		fs.Close()
		return nil, err
	}
	if err := reopenCold(path); err != nil {
		return nil, err
	}
	if rep.Drift, err = runPhase(fs, "after drift", regionsB); err != nil {
		fs.Close()
		return nil, err
	}

	// The adaptive controller sees the drifted stream and re-clusters: the
	// migrator is the same mechanism the daemon uses, minus the catalog.
	newPath := filepath.Join(dir, "bench.g1.db")
	migrate := func(ctx context.Context, d *adaptive.Decision) error {
		o, err := linear.FromPath(ds.Schema, d.Path, d.Snaked)
		if err != nil {
			return err
		}
		dst, err := storage.MigrateCtx(ctx, fs, newPath, o, frames, d.Progress)
		if err != nil {
			return err
		}
		old := fs
		fs, order = dst, o
		rep.StrategyAfter = o.Name
		return old.Close()
	}
	acfg := adaptive.Config{
		CheckInterval:   time.Second,
		Smoothing:       0.5,
		MinWeight:       1,
		RegretThreshold: 1.01,
		Hysteresis:      1,
	}
	ctrl, err := adaptive.New(lattice.New(ds.Schema), optA.Path, true, 0, migrate, acfg)
	if err != nil {
		fs.Close()
		return nil, err
	}
	for _, c := range classesB {
		if err := ctrl.Observe(c); err != nil {
			fs.Close()
			return nil, err
		}
	}
	// MaxSpans far above the serving default: the copy phase emits one
	// page_load span per physical read, and a capped trace would silently
	// drop the later phases (flush, and the daemon's commit/swap kinds).
	rec := trace.NewRecorder(trace.Config{Capacity: 1, RetainedCapacity: 1, MaxSpans: 1 << 20})
	tctx, tr := rec.StartForced(context.Background(), "bench-reorg")
	start := time.Now()
	d, err := ctrl.Trigger(tctx, false)
	tr.Finish(err)
	if err != nil {
		fs.Close()
		return nil, fmt.Errorf("adaptivebench: reorganization did not fire: %w", err)
	}
	rep.MigrationSeconds = time.Since(start).Seconds()
	phases := spanAccumulator{}
	phases.add(tr.Spans())
	rep.MigrationPhases = phases.summaries()
	rep.Regret = d.Regret
	rep.Generation = ctrl.Generation()

	if err := reopenCold(newPath); err != nil {
		return nil, err
	}
	if rep.After, err = runPhase(fs, "after reorg", regionsB); err != nil {
		fs.Close()
		return nil, err
	}
	return rep, fs.Close()
}

// runPhase executes one query stream, timing it and accumulating both sides
// of the cost model.
func runPhase(fs *storage.FileStore, name string, regions []linear.Region) (AdaptivePhase, error) {
	p := AdaptivePhase{Name: name, Queries: len(regions)}
	start := time.Now()
	for _, r := range regions {
		pred := fs.Layout().Query(r)
		var tally storage.PoolTally
		ctx := storage.WithPoolTally(context.Background(), &tally)
		err := fs.ReadQueryCtx(ctx, r, func(cell int, record []byte) error {
			p.RecordsRead++
			return nil
		})
		if err != nil {
			return p, err
		}
		p.PredictedPages += pred.Pages
		p.PredictedSeeks += pred.Seeks
		p.ObservedPageReads += tally.Stats().Misses
		p.ObservedSeeks += tally.Seeks()
	}
	p.WallSeconds = time.Since(start).Seconds()
	if p.WallSeconds > 0 {
		p.QueriesPerSecond = float64(p.Queries) / p.WallSeconds
	}
	return p, nil
}
