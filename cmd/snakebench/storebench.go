package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BenchReport is the machine-readable result of one store benchmark run,
// written as BENCH_<name>.json so successive runs form a comparable
// trajectory. It carries both sides of the paper's cost model: the analytic
// page/seek prediction summed over the executed queries and the physical
// reads/seeks the buffer pool actually performed, measured per query by a
// request-local tally.
type BenchReport struct {
	Name     string `json:"name"`
	Seed     uint64 `json:"seed"`
	Full     bool   `json:"full"`
	Strategy string `json:"strategy"`

	Cells         int   `json:"cells"`
	RecordsLoaded int64 `json:"recordsLoaded"`
	PageBytes     int64 `json:"pageBytes"`
	PoolFrames    int   `json:"poolFrames"`

	Queries          int     `json:"queries"`
	RecordsRead      int64   `json:"recordsRead"`
	WallSeconds      float64 `json:"wallSeconds"`
	QueriesPerSecond float64 `json:"queriesPerSecond"`

	LatencyMsMean float64 `json:"latencyMsMean"`
	LatencyMsP50  float64 `json:"latencyMsP50"`
	LatencyMsP90  float64 `json:"latencyMsP90"`
	LatencyMsP99  float64 `json:"latencyMsP99"`
	LatencyMsMax  float64 `json:"latencyMsMax"`

	PredictedPages    int64 `json:"predictedPages"`
	ObservedPageReads int64 `json:"observedPageReads"`
	PredictedSeeks    int64 `json:"predictedSeeks"`
	ObservedSeeks     int64 `json:"observedSeeks"`

	Pool storage.PoolStats `json:"pool"`

	// SpanSummary breaks the measured stream down by traced span kind:
	// every query runs under a SampleEvery-1 trace, so the totals account
	// for where the wall time of the read path actually went.
	SpanSummary []SpanKindSummary `json:"spanSummary,omitempty"`
}

// Summary is the one-line human rendering of the report.
func (r *BenchReport) Summary() string {
	return fmt.Sprintf("%d queries in %.2fs (%.0f q/s), latency ms p50=%.3f p99=%.3f, pages predicted=%d read=%d, seeks predicted=%d observed=%d",
		r.Queries, r.WallSeconds, r.QueriesPerSecond,
		r.LatencyMsP50, r.LatencyMsP99,
		r.PredictedPages, r.ObservedPageReads,
		r.PredictedSeeks, r.ObservedSeeks)
}

// WriteFile writes the report as indented JSON, atomically.
func (r *BenchReport) WriteFile(path string) error {
	return writeReportJSON(path, r)
}

// benchStore is a generated warehouse loaded into a paged store in a temp
// directory, plus everything needed to reopen it cold and sample queries
// against it. It is the shared substrate of the store and sustained
// benchmarks.
type benchStore struct {
	ds     *tpcd.Dataset
	w      *workload.Workload
	order  *linear.Order
	framed []int64
	dir    string
	path   string
	frames int
	loaded []int64

	fs            *storage.FileStore
	recordsLoaded int64
}

// buildBenchStore generates the warehouse, picks the snaked optimal
// clustering for the featured workload, loads a paged store in a temp
// directory, and reopens it so b.fs starts on a cold pool.
func buildBenchStore(cfg tpcd.Config, frames int) (*benchStore, error) {
	if cfg.RecordBytes < 8 {
		return nil, fmt.Errorf("storebench: RecordBytes = %d cannot hold the 8-byte measure", cfg.RecordBytes)
	}
	ds, err := tpcd.Build(cfg)
	if err != nil {
		return nil, err
	}
	w, err := ds.Workload(tpcd.PaperWorkload7())
	if err != nil {
		return nil, err
	}
	opt, err := core.Optimal(w)
	if err != nil {
		return nil, err
	}
	o, err := linear.FromPath(ds.Schema, opt.Path, true)
	if err != nil {
		return nil, err
	}

	b := &benchStore{ds: ds, w: w, order: o, framed: paddedBytes(ds), frames: frames}
	b.dir, err = os.MkdirTemp("", "snakebench")
	if err != nil {
		return nil, err
	}
	b.path = filepath.Join(b.dir, "bench.db")
	fs, err := storage.CreateFileStore(b.path, o, b.framed, int(cfg.PageBytes), frames)
	if err != nil {
		os.RemoveAll(b.dir)
		return nil, err
	}

	shape := ds.Schema.LeafCounts()
	nSupp, nTime := shape[1], shape[2]
	payload := make([]byte, cfg.RecordBytes)
	var loadErr error
	ds.EachRecord(func(li *tpcd.LineItem) bool {
		part, supp, day := li.Cell()
		binary.LittleEndian.PutUint64(payload[:8], math.Float64bits(li.ExtendedPrice))
		if loadErr = fs.PutRecord((part*nSupp+supp)*nTime+day, payload); loadErr != nil {
			return false
		}
		b.recordsLoaded++
		return true
	})
	if loadErr != nil {
		fs.Close()
		os.RemoveAll(b.dir)
		return nil, loadErr
	}

	// Reopen so the query stream starts on a cold pool: loading itself goes
	// through the pool and would otherwise pre-warm every page.
	b.loaded = fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		os.RemoveAll(b.dir)
		return nil, err
	}
	if err := b.reopenCold(); err != nil {
		os.RemoveAll(b.dir)
		return nil, err
	}
	return b, nil
}

// reopenCold returns the store to a cold buffer pool, so the next query
// stream measures physical reads. An open store is reset in place
// (BufferPool.Reset drops every frame; prepared plans survive, exactly as
// they would across quiet periods of a long-running server); a closed one is
// reopened from the file.
func (b *benchStore) reopenCold() error {
	if b.fs != nil {
		return b.fs.Pool().Reset(context.Background())
	}
	fs, err := storage.OpenFileStore(b.path, b.order, b.framed, int(b.ds.Config.PageBytes), b.frames, b.loaded)
	if err != nil {
		return err
	}
	b.fs = fs
	return nil
}

// Close releases the store and its temp directory.
func (b *benchStore) Close() {
	if b.fs != nil {
		b.fs.Close()
		b.fs = nil
	}
	os.RemoveAll(b.dir)
}

// storeBench runs the end-to-end benchmark: generate the warehouse, pick
// the snaked optimal clustering for the featured workload, load a paged
// store in a temp directory, then execute a workload-sampled query stream
// against a cold pool, timing every query and comparing the analytic
// page/seek prediction with the traffic the pool actually saw.
func storeBench(cfg tpcd.Config, name string, queries, frames int) (*BenchReport, error) {
	if queries <= 0 {
		return nil, fmt.Errorf("storebench: need a positive query count, got %d", queries)
	}
	bs, err := buildBenchStore(cfg, frames)
	if err != nil {
		return nil, err
	}
	defer bs.Close()
	fs := bs.fs

	rep := &BenchReport{
		Name:          name,
		Seed:          cfg.Seed,
		Strategy:      bs.order.Name,
		Cells:         len(bs.ds.BytesPerCell),
		RecordsLoaded: bs.recordsLoaded,
		PageBytes:     cfg.PageBytes,
		PoolFrames:    frames,
	}

	regions, err := sampleRegions(bs.ds, bs.w, bs.order, queries)
	if err != nil {
		return nil, err
	}
	// MaxSpans far above the serving default: a bench query may load
	// thousands of pages, and a capped trace would silently undercount the
	// span summary (the daemon wants bounded memory; the bench wants truth).
	rec := trace.NewRecorder(trace.Config{SampleEvery: 1, Capacity: 1, RetainedCapacity: 1, MaxSpans: 1 << 20})
	spans := spanAccumulator{}
	latencies := make([]float64, 0, len(regions))
	start := time.Now()
	for _, r := range regions {
		pred := fs.Layout().Query(r)
		var tally storage.PoolTally
		ctx := storage.WithPoolTally(context.Background(), &tally)
		ctx, tr := rec.Start(ctx, "bench-query")
		t0 := time.Now()
		err := fs.ReadQueryCtx(ctx, r, func(cell int, record []byte) error {
			rep.RecordsRead++
			return nil
		})
		tr.Finish(err)
		if err != nil {
			return nil, err
		}
		spans.add(tr.Spans())
		latencies = append(latencies, time.Since(t0).Seconds())
		rep.PredictedPages += pred.Pages
		rep.PredictedSeeks += pred.Seeks
		rep.ObservedPageReads += tally.Stats().Misses
		rep.ObservedSeeks += tally.Seeks()
	}
	rep.WallSeconds = time.Since(start).Seconds()
	rep.Queries = len(regions)
	if rep.WallSeconds > 0 {
		rep.QueriesPerSecond = float64(rep.Queries) / rep.WallSeconds
	}
	rep.Pool = fs.Pool().Stats()
	rep.SpanSummary = spans.summaries()

	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	ms := func(s float64) float64 { return s * 1e3 }
	rep.LatencyMsMean = ms(sum / float64(len(latencies)))
	rep.LatencyMsP50 = ms(percentile(latencies, 0.50))
	rep.LatencyMsP90 = ms(percentile(latencies, 0.90))
	rep.LatencyMsP99 = ms(percentile(latencies, 0.99))
	rep.LatencyMsMax = ms(latencies[len(latencies)-1])
	return rep, nil
}

// sampleRegions draws n non-vacuous query regions from the workload: a
// class by its probability, then uniform nodes within the class — the same
// scheme the measurement experiments use. Sampling is deterministic in the
// dataset's seed. Vacuous regions (selecting no bytes) are resampled under
// a bounded budget; exhausting it is an error, never a silent shortfall.
func sampleRegions(ds *tpcd.Dataset, w *workload.Workload, o *linear.Order, n int) ([]linear.Region, error) {
	regions, _, err := sampleRegionsWithClasses(ds, w, o, n)
	return regions, err
}

// sampleRegionsWithClasses is sampleRegions plus the class each region was
// drawn from, so the adaptive benchmark can replay the same stream into the
// controller's workload estimator.
func sampleRegionsWithClasses(ds *tpcd.Dataset, w *workload.Workload, o *linear.Order, n int) ([]linear.Region, []lattice.Point, error) {
	classes := w.Support()
	if len(classes) == 0 {
		return nil, nil, fmt.Errorf("storebench: workload has empty support")
	}
	cum := make([]float64, len(classes))
	total := 0.0
	for i, c := range classes {
		total += w.Prob(c)
		cum[i] = total
	}
	rng := rand.New(rand.NewSource(int64(ds.Config.Seed)))
	layout, err := storage.NewFileLayout(o, paddedBytes(ds), ds.Config.PageBytes)
	if err != nil {
		return nil, nil, err
	}
	out := make([]linear.Region, 0, n)
	drawn := make([]lattice.Point, 0, n)
	budget := 100 * n
	for len(out) < n {
		if budget--; budget < 0 {
			return nil, nil, fmt.Errorf("storebench: could not sample %d non-empty queries (got %d); dataset too sparse", n, len(out))
		}
		u := rng.Float64() * total
		ci := sort.SearchFloat64s(cum, u)
		if ci == len(classes) {
			ci--
		}
		c := classes[ci]
		nodes := make([]int, ds.Schema.K())
		for d := range nodes {
			nodes[d] = rng.Intn(ds.Schema.Dims[d].NodesAt(c[d]))
		}
		r := linear.ClassRegion(o, c, nodes)
		if layout.Query(r).Bytes == 0 {
			continue // the paper's queries always select data; skip vacuous ones
		}
		out = append(out, r)
		drawn = append(drawn, c)
	}
	return out, drawn, nil
}

// paddedBytes is the framed per-cell size the benchmark store reserves —
// sampleRegions uses it so its vacuity check matches the loaded store.
func paddedBytes(ds *tpcd.Dataset) []int64 {
	framed := make([]int64, len(ds.BytesPerCell))
	for i, b := range ds.BytesPerCell {
		framed[i] = (b / int64(ds.Config.RecordBytes)) * storage.FrameSize(ds.Config.RecordBytes)
	}
	return framed
}

// percentile returns the p-quantile of sorted (nearest-rank on the sorted
// slice, interpolation-free).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
