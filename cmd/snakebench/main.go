// Command snakebench regenerates every table and figure of the paper's
// evaluation and prints them in the paper's layout.
//
// Usage:
//
//	snakebench [-full] [-samples n] [-tables 1,2,3,4,5,6] [-figures]
//	    [-seed n] [-json BENCH_name.json]
//
// By default the TPC-D tables run on a reduced warehouse that finishes in
// seconds; -full uses the paper's dimensions (5×40 parts, 10 suppliers,
// 7 years of days), which takes a few minutes.
//
// -json additionally runs an end-to-end store benchmark — build the
// warehouse, load it into a paged file clustered by the snaked optimal
// path, and execute a workload-sampled query stream — and writes a
// machine-readable report (queries/sec, latency percentiles, pool stats,
// predicted vs observed pages and seeks) to the given path, so successive
// runs can be compared as a trajectory. `make bench` writes
// BENCH_<name>.json this way.
//
// -sustained-json runs the sustained-load benchmark of the parallel
// fragment read path: cold-pool sequential vs parallel QPS, a bit-identity
// check of Parallelism=1 against the sequential path, exact reconciliation
// of observed pages/seeks against the analytic model, and an open-loop
// phase (deterministic Poisson arrivals, bounded inflight) whose latency
// percentiles are measured from each query's scheduled arrival.
// -sustained-seconds, -read-parallel and -read-ahead tune it.
//
// -obs-json runs the observability benchmark: exact per-class cost-model
// calibration on a cold store, drift detection under a full delta
// overlay, recovery through paced compaction, and deterministic SLO
// burn-rate transitions on an injected clock.
//
// Flag combinations that would silently ignore input are usage errors:
// positional arguments, benchmark knobs (-bench-queries, -bench-frames,
// -name) without a benchmark mode flag, and sustained-phase knobs without
// -sustained-json.
//
// Exit status: 0 on success, 1 on computation errors, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/tpcd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchOpts bundles every knob of a bench run; one seed feeds every
// generated dataset so the whole run is reproducible from the flag.
type benchOpts struct {
	full       bool
	samples    int
	tables     string
	figures    bool
	all27      bool
	validate   bool
	robustness bool
	seed       uint64
	name       string
	jsonPath   string
	adaptPath  string
	chaosPath  string
	sustPath   string
	ingestPath string
	obsPath    string
	queries    int
	frames     int
	framesSet  bool

	sustSeconds  float64
	readParallel int
	readAhead    int
}

// run is the testable entry point: it parses args, writes reports to
// stdout, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snakebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o benchOpts
	fs.BoolVar(&o.full, "full", false, "use the paper's full warehouse dimensions for Tables 4-6")
	fs.IntVar(&o.samples, "samples", 48, "queries sampled per class when measuring the warehouse")
	fs.StringVar(&o.tables, "tables", "1,2,3,4,5,6", "comma-separated tables to run")
	fs.BoolVar(&o.figures, "figures", true, "render Figures 1/2/3/5")
	fs.BoolVar(&o.all27, "all27", false, "run Table 4 over all 27 Section-6.2 workloads")
	fs.BoolVar(&o.validate, "validate", false, "cross-check the analytic cost model against the storage simulator")
	fs.BoolVar(&o.robustness, "robustness", false, "measure sensitivity of the optimized path to workload estimation error")
	fs.Uint64Var(&o.seed, "seed", tpcd.DefaultConfig().Seed, "seed for every generated dataset and sampled query stream")
	fs.StringVar(&o.name, "name", "local", "benchmark name recorded in the -json report")
	fs.StringVar(&o.jsonPath, "json", "", "run the store benchmark and write its JSON report to this path")
	fs.StringVar(&o.adaptPath, "adaptive-json", "", "run the adaptive reorganization benchmark and write its JSON report to this path")
	fs.StringVar(&o.chaosPath, "chaos-json", "", "run the self-healing benchmark (repair throughput, scrub overhead, time-to-healthy) and write its JSON report to this path")
	fs.StringVar(&o.sustPath, "sustained-json", "", "run the sustained-load benchmark (parallel read path: cold speedup, model reconciliation, open-loop SLO percentiles) and write its JSON report to this path")
	fs.StringVar(&o.ingestPath, "ingest-json", "", "run the write-path benchmark (delta-store ingest under mixed load, compaction convergence, incremental re-clustering) and write its JSON report to this path")
	fs.StringVar(&o.obsPath, "obs-json", "", "run the observability benchmark (exact cold calibration, overlay drift detection, compaction recovery, deterministic SLO burn rates) and write its JSON report to this path")
	fs.IntVar(&o.queries, "bench-queries", 256, "queries executed by the benchmark modes")
	fs.IntVar(&o.frames, "bench-frames", 256, "buffer pool frames for the benchmark modes (the sustained benchmark defaults to a pool sized above the store instead)")
	fs.Float64Var(&o.sustSeconds, "sustained-seconds", 30, "duration of the sustained benchmark's open-loop phase")
	fs.IntVar(&o.readParallel, "read-parallel", 3, "concurrent fragment fetches per query in the sustained benchmark")
	fs.IntVar(&o.readAhead, "read-ahead", 32, "pages of intra-fragment readahead in the sustained benchmark")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if code := validateFlags(fs, stderr); code != 0 {
		return code
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "bench-frames" {
			o.framesSet = true
		}
	})
	if err := bench(stdout, o); err != nil {
		fmt.Fprintln(stderr, "snakebench:", err)
		return 1
	}
	return 0
}

// validateFlags rejects flag combinations that would otherwise run and
// silently ignore half their input: positional arguments (every input is a
// flag), benchmark knobs without any benchmark mode, and sustained-phase
// knobs without -sustained-json. Returns 2 (usage error) on rejection.
func validateFlags(fs *flag.FlagSet, stderr io.Writer) int {
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "snakebench: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	anyMode := set["json"] || set["adaptive-json"] || set["chaos-json"] || set["sustained-json"] || set["ingest-json"] || set["obs-json"]
	for _, name := range []string{"bench-queries", "bench-frames", "name"} {
		if set[name] && !anyMode {
			fmt.Fprintf(stderr, "snakebench: -%s has no effect without a benchmark mode (-json, -adaptive-json, -chaos-json, -sustained-json, -ingest-json or -obs-json)\n", name)
			fs.Usage()
			return 2
		}
	}
	for _, name := range []string{"sustained-seconds", "read-parallel", "read-ahead"} {
		if set[name] && !set["sustained-json"] {
			fmt.Fprintf(stderr, "snakebench: -%s has no effect without -sustained-json\n", name)
			fs.Usage()
			return 2
		}
	}
	return 0
}

// validateConfig is the tiny uniform grid the model validation runs on.
// The structure is fixed; the seed is the caller's, not a hardcoded one.
func validateConfig(seed uint64) tpcd.Config {
	return tpcd.Config{
		Manufacturers: 2, PartsPerMfr: 3, Suppliers: 2,
		Years: 2, MonthsPerYear: 2, DaysPerMonth: 2,
		RecordBytes: 1, PageBytes: 1, MeanRecordsPerCell: 1, Seed: seed,
	}
}

// warehouseConfig is the TPC-D warehouse for Tables 4-6 and the store
// benchmark: the paper's dimensions when full, a reduced grid otherwise,
// always generated from the caller's seed.
func warehouseConfig(full bool, seed uint64) tpcd.Config {
	cfg := tpcd.DefaultConfig()
	cfg.Seed = seed
	if !full {
		cfg.PartsPerMfr = 8
		cfg.DaysPerMonth = 6
		cfg.Years = 4
	}
	return cfg
}

func bench(out io.Writer, o benchOpts) error {
	want := map[string]bool{}
	for _, t := range strings.Split(o.tables, ",") {
		want[strings.TrimSpace(t)] = true
	}

	if o.figures {
		fmt.Fprintln(out, "== Figure 3: query class lattice of the example schema ==")
		fmt.Fprintln(out, experiments.Figure3())
		figs, err := experiments.FigureGrids()
		if err != nil {
			return err
		}
		for _, f := range figs {
			fmt.Fprintln(out, experiments.FormatGrid(f))
		}
	}

	if o.validate {
		s, err := validateConfig(o.seed).Schema()
		if err != nil {
			return err
		}
		rows, err := experiments.ValidateModel(s)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== Model validation (uniform grid, one cell per page) ==")
		fmt.Fprint(out, experiments.FormatValidation(rows))
		fmt.Fprintln(out)
	}

	if o.robustness {
		cfg := tpcd.DefaultConfig()
		cfg.Seed = o.seed
		ds, err := tpcd.Build(cfg)
		if err != nil {
			return err
		}
		w, err := ds.Workload(tpcd.PaperWorkload7())
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== Robustness of the optimized path to workload error (TPC-D lattice) ==")
		for _, eps := range []float64{0.05, 0.1, 0.25, 0.5} {
			rep, err := experiments.Robustness(w, eps, 200, 11)
			if err != nil {
				return err
			}
			fmt.Fprint(out, experiments.FormatRobustness(rep))
		}
		fmt.Fprintln(out)
	}

	if want["1"] {
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== Table 1: average query class cost ==")
		fmt.Fprintln(out, experiments.FormatTable1(rows))
	}
	if want["2"] {
		rows, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== Table 2: expected workload cost ==")
		fmt.Fprintln(out, experiments.FormatTable2(rows))
	}
	if want["3"] {
		rows, err := experiments.Table3(experiments.Table3Fanouts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== Table 3: best/worst cost ratio for varying fanouts ==")
		fmt.Fprintln(out, experiments.FormatTable3(rows, experiments.Table3Fanouts))
	}

	if want["4"] || want["5"] || want["6"] {
		cfg := warehouseConfig(o.full, o.seed)

		if want["4"] {
			ds, err := tpcd.Build(cfg)
			if err != nil {
				return err
			}
			sum := ds.Summarize()
			fmt.Fprintf(out, "== TPC-D warehouse: %d cells, %d records (%d empty cells, %.1f MB) ==\n",
				sum.Cells, sum.Records, sum.EmptyCells, float64(sum.TotalBytes)/1e6)
			m := experiments.NewMeasurer(ds)
			m.SamplesPerClass = o.samples

			// The paper reports workloads 1, 5, 7, 13 and 25 of its 27; we show
			// the same positions of our enumeration plus the featured
			// parts↑/supplier↓/time↑ mix (see EXPERIMENTS.md on numbering).
			// -all27 runs the complete sweep the paper describes.
			all := tpcd.Mixes()
			var sel []tpcd.Mix
			if o.all27 {
				sel = all
			} else {
				sel = []tpcd.Mix{all[0], all[4], all[6], all[12], all[24]}
				featured := tpcd.PaperWorkload7()
				have := false
				for _, mx := range sel {
					if mx == featured {
						have = true
					}
				}
				if !have {
					sel = append(sel, featured)
				}
			}
			rows, err := experiments.Table4(m, sel)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Table 4: normalized blocks read (seeks per query) ==")
			fmt.Fprintln(out, experiments.FormatTable4(rows))
		}

		if want["5"] || want["6"] {
			fanouts := []int{4, 10, 40}
			if !o.full {
				fanouts = []int{4, 10, 20}
			}
			rows, err := experiments.Table5(cfg, fanouts, o.samples)
			if err != nil {
				return err
			}
			if want["5"] {
				fmt.Fprintln(out, "== Table 5: normalized blocks read for the featured workload ==")
				fmt.Fprintln(out, experiments.FormatTable5(rows))
			}
			if want["6"] {
				fmt.Fprintln(out, "== Table 6: normalized blocks read relative to the snaked optimal path ==")
				fmt.Fprintln(out, experiments.FormatTable6(rows))
			}
		}
	}

	if o.jsonPath != "" {
		rep, err := storeBench(warehouseConfig(o.full, o.seed), o.name, o.queries, o.frames)
		if err != nil {
			return err
		}
		rep.Full = o.full
		if err := rep.WriteFile(o.jsonPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "== Store bench %q: %s ==\n", o.name, rep.Summary())
		fmt.Fprintf(out, "report written to %s\n", o.jsonPath)
	}

	if o.adaptPath != "" {
		rep, err := adaptiveBench(warehouseConfig(o.full, o.seed), o.name, o.queries, o.frames)
		if err != nil {
			return err
		}
		rep.Full = o.full
		if err := rep.WriteFile(o.adaptPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "== Adaptive bench %q: %s ==\n", o.name, rep.Summary())
		fmt.Fprintf(out, "report written to %s\n", o.adaptPath)
	}

	if o.chaosPath != "" {
		rep, err := chaosBench(warehouseConfig(o.full, o.seed), o.name, o.queries, o.frames)
		if err != nil {
			return err
		}
		rep.Full = o.full
		if err := rep.WriteFile(o.chaosPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "== Chaos bench %q: %s ==\n", o.name, rep.Summary())
		fmt.Fprintf(out, "report written to %s\n", o.chaosPath)
	}

	if o.ingestPath != "" {
		iop := defaultIngestOpts()
		iop.queries = o.queries
		if o.framesSet {
			iop.frames = o.frames
		}
		rep, err := ingestBench(warehouseConfig(o.full, o.seed), o.name, iop)
		if err != nil {
			return err
		}
		rep.Full = o.full
		if err := rep.WriteFile(o.ingestPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "== Ingest bench %q: %s ==\n", o.name, rep.Summary())
		fmt.Fprintf(out, "report written to %s\n", o.ingestPath)
	}

	if o.obsPath != "" {
		oop := defaultObsOpts()
		oop.queries = o.queries
		if o.framesSet {
			oop.frames = o.frames
		}
		rep, err := obsBench(warehouseConfig(o.full, o.seed), o.name, oop)
		if err != nil {
			return err
		}
		rep.Full = o.full
		if err := rep.WriteFile(o.obsPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "== Obs bench %q: %s ==\n", o.name, rep.Summary())
		fmt.Fprintf(out, "report written to %s\n", o.obsPath)
	}

	if o.sustPath != "" {
		so := defaultSustainedOpts()
		so.queries = o.queries
		so.seconds = o.sustSeconds
		so.parallel = o.readParallel
		so.readahead = o.readAhead
		if o.framesSet {
			so.frames = o.frames
		}
		rep, err := sustainedBench(warehouseConfig(o.full, o.seed), o.name, so)
		if err != nil {
			return err
		}
		rep.Full = o.full
		if err := rep.WriteFile(o.sustPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "== Sustained bench %q: %s ==\n", o.name, rep.Summary())
		fmt.Fprintf(out, "report written to %s\n", o.sustPath)
	}
	return nil
}
