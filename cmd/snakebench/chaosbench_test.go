package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestChaosBenchMeasuresAndHeals(t *testing.T) {
	rep, err := chaosBench(tinyConfig(42), "t", 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsLoaded == 0 || rep.TotalPages == 0 {
		t.Fatalf("report moved no data: %+v", rep)
	}
	if rep.ParityGroup <= 0 || rep.ParityOverheadPct <= 0 {
		t.Errorf("parity accounting missing: %+v", rep)
	}
	if rep.BurstFaults == 0 {
		t.Error("no faults injected")
	}
	if rep.RepairedPages == 0 || rep.RepairPagesPerSecond <= 0 {
		t.Errorf("repair throughput missing: repaired=%d rate=%v", rep.RepairedPages, rep.RepairPagesPerSecond)
	}
	if rep.TimeToHealthySeconds <= 0 {
		t.Errorf("time-to-healthy = %v, want positive", rep.TimeToHealthySeconds)
	}
	if rep.BaselineLatencyMsP99 <= 0 || rep.ScrubLatencyMsP99 <= 0 {
		t.Errorf("latency phases missing: %+v", rep)
	}
	if rep.Queries != 12 {
		t.Errorf("queries = %d, want 12", rep.Queries)
	}

	// The same seed injects the same faults (timings vary, damage not).
	rep2, err := chaosBench(tinyConfig(42), "t", 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BurstFaults != rep2.BurstFaults || rep.RepairedPages != rep2.RepairedPages {
		t.Errorf("same seed, different damage: %d/%d faults, %d/%d repaired",
			rep.BurstFaults, rep2.BurstFaults, rep.RepairedPages, rep2.RepairedPages)
	}
}

func TestChaosReportJSON(t *testing.T) {
	rep, err := chaosBench(tinyConfig(1), "roundtrip", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_chaos.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"name", "seed", "parityGroup", "parityOverheadPct", "burstFaults",
		"repairedPages", "repairPagesPerSecond", "timeToHealthySeconds",
		"baselineLatencyMsP99", "scrubLatencyMsP99", "scrubOverheadP99Pct",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("report missing %q", key)
		}
	}
	if !strings.Contains(rep.Summary(), "time-to-healthy") {
		t.Errorf("summary %q unreadable", rep.Summary())
	}
}
