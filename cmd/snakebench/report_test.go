package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestReportWriterAtomic: the happy path writes a complete report and
// leaves no temp file behind.
func TestReportWriterAtomic(t *testing.T) {
	dest := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := writeReportJSON(dest, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]int
	if err := json.Unmarshal(data, &v); err != nil || v["a"] != 1 {
		t.Fatalf("round trip = %v, %v", v, err)
	}
	if _, err := os.Stat(dest + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind after a successful write")
	}
}

// TestReportWriterKilledMidEmit re-executes the test binary with the crash
// hook armed, so writeReportJSON dies halfway through emitting the temp
// file — the way a benchmark run killed mid-write would. The destination
// path must be absent or complete valid JSON, never a truncated artifact;
// a stale *.tmp is acceptable debris. The same helper without the hook is
// the control: the write must land.
func TestReportWriterKilledMidEmit(t *testing.T) {
	if os.Getenv("SNAKEBENCH_CRASH_HELPER") == "1" {
		if err := writeReportJSON(os.Getenv("SNAKEBENCH_CRASH_PATH"), &BenchReport{Name: "crash", Queries: 1}); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	dest := filepath.Join(t.TempDir(), "BENCH_crash.json")
	helper := func(crash bool) error {
		cmd := exec.Command(os.Args[0], "-test.run", "TestReportWriterKilledMidEmit")
		cmd.Env = append(os.Environ(),
			"SNAKEBENCH_CRASH_HELPER=1",
			"SNAKEBENCH_CRASH_PATH="+dest)
		if crash {
			cmd.Env = append(cmd.Env, crashEnv+"=1")
		}
		return cmd.Run()
	}

	err := helper(true)
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != crashExitCode {
		t.Fatalf("crashed helper err = %v, want exit code %d", err, crashExitCode)
	}
	if data, err := os.ReadFile(dest); err == nil {
		var rep BenchReport
		if json.Unmarshal(data, &rep) != nil {
			t.Fatalf("destination exists after crash and is not valid JSON: %q", data)
		}
	} else if !os.IsNotExist(err) {
		t.Fatal(err)
	}

	if err := helper(false); err != nil {
		t.Fatalf("control helper: %v", err)
	}
	data, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var rep BenchReport
	if err := dec.Decode(&rep); err != nil || rep.Name != "crash" {
		t.Fatalf("control write round trip = %+v, %v", rep, err)
	}
	if _, err := os.Stat(dest + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("control write left a temp file behind")
	}
}
