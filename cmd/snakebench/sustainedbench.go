package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/linear"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

// SustainedReport is the machine-readable result of the sustained-load
// benchmark (snakebench -sustained-json → BENCH_sustained.json). It gates
// the parallel fragment read path the way BENCH_store.json gates the
// sequential one, in four acts:
//
//  1. Cold-pool comparison: several timed passes of the sampled query
//     stream on the sequential SumCtx path and on the parallel path, the
//     buffer pool reset before every pass, giving ColdSpeedup — the
//     headline number. An untimed preparation pass first warms the store's
//     prepared query plans, so both sides measure steady-state cold-page
//     IO, not first-contact planning.
//  2. Equivalence: Parallelism=1 must produce bit-identical sums to the
//     sequential path (it delegates to it); the bench hard-fails otherwise.
//  3. Reconciliation: a per-query slice of the stream re-runs cold with a
//     request tally, and predicted pages/seeks from the analytic model must
//     equal the observed physical reads exactly — a mismatch is an error,
//     not a report field.
//  4. Sustained open-loop phase: queries arrive on a deterministic Poisson
//     schedule (seeded by the dataset seed) at a fixed fraction of the
//     measured parallel capacity, served by a bounded worker set. Latency
//     is measured from the scheduled arrival, so queueing delay counts —
//     the SLO percentiles describe what a client would see, not just
//     service time.
//
// Cold means a cold buffer pool: the store itself stays open across passes
// (prepared query plans survive, exactly as they would across quiet periods
// of a long-running server), and every pass re-reads each page it touches
// through the pool.
type SustainedReport struct {
	Name     string `json:"name"`
	Seed     uint64 `json:"seed"`
	Full     bool   `json:"full"`
	Strategy string `json:"strategy"`

	Cells         int   `json:"cells"`
	RecordsLoaded int64 `json:"recordsLoaded"`
	PageBytes     int64 `json:"pageBytes"`
	PoolFrames    int   `json:"poolFrames"`

	ReadParallel int `json:"readParallel"`
	ReadAhead    int `json:"readAhead"`

	BaselineQueries int     `json:"baselineQueries"`
	BaselineSeconds float64 `json:"baselineSeconds"`
	BaselineQPS     float64 `json:"baselineQPS"`
	ParallelSeconds float64 `json:"parallelSeconds"`
	ParallelQPS     float64 `json:"parallelQPS"`
	ColdSpeedup     float64 `json:"coldSpeedup"`

	IdenticalAtParallelismOne bool `json:"identicalAtParallelismOne"`

	ReconcileQueries  int   `json:"reconcileQueries"`
	PredictedPages    int64 `json:"predictedPages"`
	ObservedPageReads int64 `json:"observedPageReads"`
	PredictedSeeks    int64 `json:"predictedSeeks"`
	ObservedSeeks     int64 `json:"observedSeeks"`

	SustainSeconds   float64 `json:"sustainSeconds"`
	OfferedQPS       float64 `json:"offeredQPS"`
	MaxInflight      int     `json:"maxInflight"`
	SustainedQueries int     `json:"sustainedQueries"`
	SustainedWall    float64 `json:"sustainedWallSeconds"`
	AchievedQPS      float64 `json:"achievedQPS"`

	LatencyMsMean float64 `json:"latencyMsMean"`
	LatencyMsP50  float64 `json:"latencyMsP50"`
	LatencyMsP90  float64 `json:"latencyMsP90"`
	LatencyMsP99  float64 `json:"latencyMsP99"`
	LatencyMsMax  float64 `json:"latencyMsMax"`
}

// Summary is the one-line human rendering of the report.
func (r *SustainedReport) Summary() string {
	return fmt.Sprintf("cold %.0f q/s sequential vs %.0f q/s parallel (%.2fx, P=%d RA=%d); sustained %d queries at %.0f q/s offered, latency ms p50=%.3f p99=%.3f; pages predicted=%d read=%d, seeks predicted=%d observed=%d",
		r.BaselineQPS, r.ParallelQPS, r.ColdSpeedup, r.ReadParallel, r.ReadAhead,
		r.SustainedQueries, r.OfferedQPS,
		r.LatencyMsP50, r.LatencyMsP99,
		r.PredictedPages, r.ObservedPageReads, r.PredictedSeeks, r.ObservedSeeks)
}

// WriteFile writes the report as indented JSON, atomically.
func (r *SustainedReport) WriteFile(path string) error {
	return writeReportJSON(path, r)
}

// sustainedOpts are the knobs of one sustained bench run.
type sustainedOpts struct {
	queries   int     // distinct sampled query regions
	frames    int     // buffer pool frames
	parallel  int     // ReadOptions.Parallelism of the parallel path
	readahead int     // ReadOptions.Readahead of the parallel path
	passes    int     // timed cold passes per side of the QPS comparison
	seconds   float64 // open-loop phase duration
	inflight  int     // open-loop concurrent queries
	reconcile int     // queries in the per-query reconciliation slice
	loadFrac  float64 // offered load as a fraction of measured parallel QPS
}

// defaultSustainedOpts is the `make bench-sustained` configuration. The
// pool is sized above the store's page count so a cold pass misses each
// distinct page exactly once — the regime a provisioned server runs in —
// and the open-loop phase offers half the measured parallel capacity.
func defaultSustainedOpts() sustainedOpts {
	return sustainedOpts{
		queries:   256,
		frames:    4096,
		parallel:  3,
		readahead: 32,
		passes:    5,
		seconds:   30,
		inflight:  4,
		reconcile: 32,
		loadFrac:  0.5,
	}
}

// decodeMeasure reads the benchmark record's 8-byte measure.
func decodeMeasure(rec []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(rec[:8]))
}

// sustainedBench runs the sustained-load benchmark. The equivalence and
// reconciliation phases are hard gates: any Parallelism=1 divergence or
// predicted/observed mismatch returns an error rather than a report.
func sustainedBench(cfg tpcd.Config, name string, o sustainedOpts) (*SustainedReport, error) {
	bs, err := buildBenchStore(cfg, o.frames)
	if err != nil {
		return nil, err
	}
	defer bs.Close()

	regions, err := sampleRegions(bs.ds, bs.w, bs.order, o.queries)
	if err != nil {
		return nil, err
	}
	opt := storage.ReadOptions{Parallelism: o.parallel, Readahead: o.readahead}
	ctx := context.Background()

	rep := &SustainedReport{
		Name:           name,
		Seed:           cfg.Seed,
		Strategy:       bs.order.Name,
		Cells:          len(bs.ds.BytesPerCell),
		RecordsLoaded:  bs.recordsLoaded,
		PageBytes:      cfg.PageBytes,
		PoolFrames:     o.frames,
		ReadParallel:   o.parallel,
		ReadAhead:      o.readahead,
		MaxInflight:    o.inflight,
		SustainSeconds: o.seconds,
	}

	// Reference pass: sequential sums for every region — the bit-identity
	// and tolerance reference for everything below.
	seqSums := make([]float64, len(regions))
	for i, r := range regions {
		if seqSums[i], _, err = bs.fs.SumCtx(ctx, r, decodeMeasure); err != nil {
			return nil, err
		}
	}

	// Equivalence gate: Parallelism=1 must be the sequential path, bit for
	// bit. Runs warm — equivalence is about bytes, not timing.
	for i, r := range regions {
		s1, _, err := bs.fs.SumOptCtx(ctx, r, storage.ReadOptions{Parallelism: 1}, decodeMeasure)
		if err != nil {
			return nil, err
		}
		if math.Float64bits(s1) != math.Float64bits(seqSums[i]) {
			return nil, fmt.Errorf("sustainedbench: query %d: Parallelism=1 sum %x differs from sequential %x",
				i, math.Float64bits(s1), math.Float64bits(seqSums[i]))
		}
	}
	rep.IdenticalAtParallelismOne = true

	// Untimed parallel preparation pass: validates every parallel sum
	// against the sequential reference and leaves the store's prepared
	// query plans warm — the steady state a serving process reaches after
	// its first encounter with each query shape. The timed cold passes
	// below reset only the buffer pool, so they measure cold-page IO under
	// prepared plans, not first-contact planning.
	for i, r := range regions {
		sum, _, err := bs.fs.SumOptCtx(ctx, r, opt, decodeMeasure)
		if err != nil {
			return nil, err
		}
		if math.Abs(sum-seqSums[i]) > 1e-9*(1+math.Abs(seqSums[i])) {
			return nil, fmt.Errorf("sustainedbench: query %d: parallel sum %v, sequential %v", i, sum, seqSums[i])
		}
	}

	// Cold QPS comparison: o.passes cold passes per side, pool reset before
	// each, identical query stream.
	timed := func(pass func(r linear.Region) error) (float64, error) {
		var total time.Duration
		for p := 0; p < o.passes; p++ {
			if err := bs.reopenCold(); err != nil {
				return 0, err
			}
			t0 := time.Now()
			for _, r := range regions {
				if err := pass(r); err != nil {
					return 0, err
				}
			}
			total += time.Since(t0)
		}
		return total.Seconds(), nil
	}
	rep.BaselineQueries = o.passes * len(regions)
	if rep.BaselineSeconds, err = timed(func(r linear.Region) error {
		_, _, e := bs.fs.SumCtx(ctx, r, decodeMeasure)
		return e
	}); err != nil {
		return nil, err
	}
	rep.BaselineQPS = float64(rep.BaselineQueries) / rep.BaselineSeconds
	if rep.ParallelSeconds, err = timed(func(r linear.Region) error {
		_, _, e := bs.fs.SumOptCtx(ctx, r, opt, decodeMeasure)
		return e
	}); err != nil {
		return nil, err
	}
	rep.ParallelQPS = float64(rep.BaselineQueries) / rep.ParallelSeconds
	rep.ColdSpeedup = rep.ParallelQPS / rep.BaselineQPS

	// Phase 3: per-query reconciliation against the analytic model. Each
	// query runs on a freshly reset pool so its tally counts exactly its own
	// physical reads; the store is exactly filled, so predicted == observed
	// must hold with equality.
	n := o.reconcile
	if n > len(regions) {
		n = len(regions)
	}
	for _, r := range regions[:n] {
		if err := bs.reopenCold(); err != nil {
			return nil, err
		}
		pred := bs.fs.Layout().Query(r)
		var tally storage.PoolTally
		tctx := storage.WithPoolTally(ctx, &tally)
		if _, _, err := bs.fs.SumOptCtx(tctx, r, opt, decodeMeasure); err != nil {
			return nil, err
		}
		obs := tally.Stats()
		rep.PredictedPages += pred.Pages
		rep.PredictedSeeks += pred.Seeks
		rep.ObservedPageReads += obs.Misses
		rep.ObservedSeeks += tally.Seeks()
		if obs.Misses != pred.Pages {
			return nil, fmt.Errorf("sustainedbench: region %v: observed %d page reads, analytic model predicts %d", r, obs.Misses, pred.Pages)
		}
		if tally.Seeks() != pred.Seeks {
			return nil, fmt.Errorf("sustainedbench: region %v: observed %d seeks, analytic model predicts %d", r, tally.Seeks(), pred.Seeks)
		}
	}
	rep.ReconcileQueries = n

	// Phase 4: open-loop sustained load. Arrivals follow a Poisson schedule
	// generated from the dataset seed — deterministic per seed — at
	// loadFrac of the measured parallel capacity. Workers serve scheduled
	// arrivals in order, sleeping until each arrival is due; when they fall
	// behind, the wait queues, and latency (measured from the scheduled
	// arrival) shows it.
	if err := bs.reopenCold(); err != nil {
		return nil, err
	}
	rep.OfferedQPS = o.loadFrac * rep.ParallelQPS
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	var sched []time.Duration
	at := time.Duration(0)
	horizon := time.Duration(o.seconds * float64(time.Second))
	for at < horizon {
		at += time.Duration(rng.ExpFloat64() / rep.OfferedQPS * float64(time.Second))
		if at < horizon {
			sched = append(sched, at)
		}
	}
	latencies := make([]float64, len(sched))
	var next atomic.Int64
	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	start := time.Now()
	for w := 0; w < o.inflight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(sched) || firstErr.Load() != nil {
					return
				}
				if d := sched[i] - time.Since(start); d > 0 {
					time.Sleep(d)
				}
				r := regions[i%len(regions)]
				if _, _, err := bs.fs.SumOptCtx(ctx, r, opt, decodeMeasure); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
				latencies[i] = (time.Since(start) - sched[i]).Seconds()
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}
	rep.SustainedWall = time.Since(start).Seconds()
	rep.SustainedQueries = len(sched)
	if rep.SustainedWall > 0 {
		rep.AchievedQPS = float64(len(sched)) / rep.SustainedWall
	}

	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	ms := func(s float64) float64 { return s * 1e3 }
	if len(latencies) > 0 {
		rep.LatencyMsMean = ms(sum / float64(len(latencies)))
		rep.LatencyMsP50 = ms(percentile(latencies, 0.50))
		rep.LatencyMsP90 = ms(percentile(latencies, 0.90))
		rep.LatencyMsP99 = ms(percentile(latencies, 0.99))
		rep.LatencyMsMax = ms(latencies[len(latencies)-1])
	}
	return rep, nil
}
