package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/linear"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

// IngestReport is the machine-readable result of the write-path benchmark
// (snakebench -ingest-json → BENCH_ingest.json). It gates the delta-store
// ingest path in four acts:
//
//  1. Read-only baseline: the sampled query stream runs closed-loop with a
//     warm pool, giving the read latency distribution with no writes in
//     the system.
//  2. Mixed load: the same stream runs again with every sixth operation an
//     upsert through the delta log (~17% writes, above the 10% floor) while
//     a background compactor folds the backlog into the base file in paced
//     ticks. Reads merge pending deltas on the fly; each is validated
//     against the read-only reference sum, and the report records how many
//     overlaid cells the reads actually hit. The p99 gate (mixed within 2×
//     of baseline) is asserted on the committed artifact by the bench lint.
//  3. Drain + cold reconciliation: the compactor drains the backlog —
//     never the whole file in one tick — and a per-query cold pass then
//     requires predicted == observed pages and seeks exactly, proving the
//     write path kept the store byte-identical to the analytic model.
//  4. Incremental re-clustering: a second copy of the warehouse is built on
//     a deliberately suboptimal row-major order and migrated region-by-
//     region (worst-scored first, bounded cells per tick) onto the
//     DP-optimal snaked order, with a pending delta riding along. The
//     migrated store's observed seeks over the sampled stream must land
//     within 5% of the DP-optimal prediction (ConvergedRegret ≤ 1.05).
type IngestReport struct {
	Name     string `json:"name"`
	Seed     uint64 `json:"seed"`
	Full     bool   `json:"full"`
	Strategy string `json:"strategy"`

	Cells         int   `json:"cells"`
	RecordsLoaded int64 `json:"recordsLoaded"`
	PageBytes     int64 `json:"pageBytes"`
	PoolFrames    int   `json:"poolFrames"`

	BaselineReads     int     `json:"baselineReads"`
	BaselineSeconds   float64 `json:"baselineSeconds"`
	BaselineQPS       float64 `json:"baselineQPS"`
	ReadP50BaselineMs float64 `json:"readP50BaselineMs"`
	ReadP99BaselineMs float64 `json:"readP99BaselineMs"`

	MixedReads     int     `json:"mixedReads"`
	MixedWrites    int     `json:"mixedWrites"`
	WriteFraction  float64 `json:"writeFraction"`
	MixedSeconds   float64 `json:"mixedSeconds"`
	MixedQPS       float64 `json:"mixedQPS"`
	ReadP50MixedMs float64 `json:"readP50MixedMs"`
	ReadP99MixedMs float64 `json:"readP99MixedMs"`
	P99Ratio       float64 `json:"p99Ratio"`
	DeltaHitCells  int64   `json:"deltaHitCells"`

	CompactionTicks int64   `json:"compactionTicks"`
	CompactedCells  int64   `json:"compactedCells"`
	CompactedBytes  int64   `json:"compactedBytes"`
	DrainTicks      int     `json:"drainTicks"`
	MaxTickCells    int     `json:"maxTickCells"`
	MaxTickFraction float64 `json:"maxTickFraction"`

	ReconcileQueries  int   `json:"reconcileQueries"`
	PredictedPages    int64 `json:"predictedPages"`
	ObservedPageReads int64 `json:"observedPageReads"`
	PredictedSeeks    int64 `json:"predictedSeeks"`
	ObservedSeeks     int64 `json:"observedSeeks"`

	ReclusterTicks           int     `json:"reclusterTicks"`
	ReclusterMaxTickFraction float64 `json:"reclusterMaxTickFraction"`
	StartRegret              float64 `json:"startRegret"`
	ConvergedRegret          float64 `json:"convergedRegret"`
}

// Summary is the one-line human rendering of the report.
func (r *IngestReport) Summary() string {
	return fmt.Sprintf("baseline p99=%.3fms, mixed (%.0f%% writes) p99=%.3fms (%.2fx); %d delta-hit reads; drained in %d ticks (max %.1f%% of file per tick); recluster %d ticks, regret %.3f→%.3f; pages predicted=%d read=%d",
		r.ReadP99BaselineMs, 100*r.WriteFraction, r.ReadP99MixedMs, r.P99Ratio,
		r.DeltaHitCells, r.DrainTicks, 100*r.MaxTickFraction,
		r.ReclusterTicks, r.StartRegret, r.ConvergedRegret,
		r.PredictedPages, r.ObservedPageReads)
}

// WriteFile writes the report as indented JSON, atomically.
func (r *IngestReport) WriteFile(path string) error {
	return writeReportJSON(path, r)
}

// ingestOpts are the knobs of one ingest bench run.
type ingestOpts struct {
	queries    int // distinct sampled query regions
	frames     int // buffer pool frames
	passes     int // closed-loop passes per phase
	writeEvery int // every n-th mixed-phase operation is an upsert
	writeCells int // distinct cells the writer cycles through
	reconcile  int // queries in the cold reconciliation slice
}

// defaultIngestOpts is the `make bench-ingest` configuration: one in six
// operations is a write (~17%, above the acceptance floor of 10%).
func defaultIngestOpts() ingestOpts {
	return ingestOpts{
		queries:    256,
		frames:     4096,
		passes:     4,
		writeEvery: 6,
		writeCells: 256,
		reconcile:  32,
	}
}

// cellPayload is one prepared whole-cell upsert: the cell's own records
// re-framed, so a write replaces the cell with identical bytes and every
// read stays checkable against the read-only reference sums.
type cellPayload struct {
	cell   int
	framed []byte
}

// prepareWritePayloads samples up to n loaded cells and captures their
// exactly-fitting framed payloads.
func prepareWritePayloads(ctx context.Context, fs *storage.FileStore, framed []int64, n int) ([]cellPayload, error) {
	var out []cellPayload
	stride := len(framed)/n + 1
	for cell := 0; cell < len(framed) && len(out) < n; cell += stride {
		if framed[cell] == 0 {
			continue
		}
		var records [][]byte
		if err := fs.ReadCellCtx(ctx, cell, func(rec []byte) error {
			records = append(records, append([]byte(nil), rec...))
			return nil
		}); err != nil {
			return nil, err
		}
		if len(records) == 0 {
			continue
		}
		out = append(out, cellPayload{cell: cell, framed: storage.FrameRecords(records...)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ingestbench: no loaded cells to write")
	}
	return out, nil
}

// ingestBench runs the write-path benchmark. The read-validation and
// reconciliation phases are hard gates: a wrong sum under mixed load or a
// predicted/observed mismatch on the cold path returns an error, not a
// report.
func ingestBench(cfg tpcd.Config, name string, o ingestOpts) (*IngestReport, error) {
	bs, err := buildBenchStore(cfg, o.frames)
	if err != nil {
		return nil, err
	}
	defer bs.Close()
	ctx := context.Background()

	regions, err := sampleRegions(bs.ds, bs.w, bs.order, o.queries)
	if err != nil {
		return nil, err
	}

	rep := &IngestReport{
		Name:          name,
		Seed:          cfg.Seed,
		Strategy:      bs.order.Name,
		Cells:         len(bs.ds.BytesPerCell),
		RecordsLoaded: bs.recordsLoaded,
		PageBytes:     cfg.PageBytes,
		PoolFrames:    o.frames,
	}

	// Reference pass: sequential sums for every region, and a warm pool, so
	// both latency phases measure steady-state service time rather than
	// first-contact misses.
	refSums := make([]float64, len(regions))
	for i, r := range regions {
		if refSums[i], _, err = bs.fs.SumCtx(ctx, r, decodeMeasure); err != nil {
			return nil, err
		}
	}
	check := func(i int, got float64) error {
		if math.Abs(got-refSums[i]) > 1e-9*(1+math.Abs(refSums[i])) {
			return fmt.Errorf("ingestbench: query %d: sum %v, reference %v", i, got, refSums[i])
		}
		return nil
	}

	// Phase 1: read-only baseline.
	baseLat := make([]float64, 0, o.passes*len(regions))
	t0 := time.Now()
	for p := 0; p < o.passes; p++ {
		for i, r := range regions {
			q0 := time.Now()
			got, _, err := bs.fs.SumCtx(ctx, r, decodeMeasure)
			if err != nil {
				return nil, err
			}
			baseLat = append(baseLat, time.Since(q0).Seconds())
			if err := check(i, got); err != nil {
				return nil, err
			}
		}
	}
	rep.BaselineSeconds = time.Since(t0).Seconds()
	rep.BaselineReads = len(baseLat)
	rep.BaselineQPS = float64(rep.BaselineReads) / rep.BaselineSeconds
	sort.Float64s(baseLat)
	rep.ReadP50BaselineMs = 1e3 * percentile(baseLat, 0.50)
	rep.ReadP99BaselineMs = 1e3 * percentile(baseLat, 0.99)

	// Phase 2: the same stream under mixed load. The delta log and a paced
	// background compactor join; every writeEvery-th operation replaces a
	// whole cell through the log instead of reading.
	payloads, err := prepareWritePayloads(ctx, bs.fs, bs.framed, o.writeCells)
	if err != nil {
		return nil, err
	}
	deltaPath := filepath.Join(bs.dir, "bench.delta")
	dlog, err := ingest.Open(deltaPath, 0, ingest.Options{Policy: ingest.SyncBatch})
	if err != nil {
		return nil, err
	}
	defer dlog.Close()
	bs.fs.SetOverlay(dlog.Overlay())

	var writeBytes int64
	for _, p := range payloads {
		writeBytes += int64(len(p.framed))
	}
	// Budget sized so draining the backlog takes several ticks — a tick
	// must never fold the whole backlog, let alone the whole file.
	comp := ingest.NewCompactor(ingest.CompactorConfig{
		RegionCells:     64,
		MaxBytesPerTick: writeBytes/8 + 1,
	})
	var compMu sync.Mutex // serializes ticks between the loop and the drain
	maxTickCells := 0
	tick := func() error {
		compMu.Lock()
		defer compMu.Unlock()
		stats, err := comp.Tick(ctx, bs.fs, dlog)
		if err != nil {
			return err
		}
		if stats.CellsApplied > maxTickCells {
			maxTickCells = stats.CellsApplied
		}
		return nil
	}
	stop := make(chan struct{})
	compErr := make(chan error, 1)
	go func() {
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				compErr <- nil
				return
			case <-t.C:
				if err := tick(); err != nil {
					compErr <- err
					return
				}
			}
		}
	}()

	mixLat := make([]float64, 0, o.passes*len(regions))
	wi := 0
	t0 = time.Now()
	for p := 0; p < o.passes; p++ {
		for i, r := range regions {
			if (p*len(regions)+i)%o.writeEvery == o.writeEvery-1 {
				pl := payloads[wi%len(payloads)]
				wi++
				if err := dlog.Put(pl.cell, pl.framed); err != nil {
					close(stop)
					return nil, err
				}
				bs.fs.InvalidateCellPlans(pl.cell)
				rep.MixedWrites++
				continue
			}
			var tally storage.PoolTally
			tctx := storage.WithPoolTally(ctx, &tally)
			q0 := time.Now()
			got, _, err := bs.fs.SumCtx(tctx, r, decodeMeasure)
			if err != nil {
				close(stop)
				return nil, err
			}
			mixLat = append(mixLat, time.Since(q0).Seconds())
			rep.DeltaHitCells += tally.DeltaHits()
			if err := check(i, got); err != nil {
				close(stop)
				return nil, err
			}
		}
	}
	rep.MixedSeconds = time.Since(t0).Seconds()
	close(stop)
	if err := <-compErr; err != nil {
		return nil, err
	}
	rep.MixedReads = len(mixLat)
	rep.WriteFraction = float64(rep.MixedWrites) / float64(rep.MixedReads+rep.MixedWrites)
	rep.MixedQPS = float64(rep.MixedReads+rep.MixedWrites) / rep.MixedSeconds
	sort.Float64s(mixLat)
	rep.ReadP50MixedMs = 1e3 * percentile(mixLat, 0.50)
	rep.ReadP99MixedMs = 1e3 * percentile(mixLat, 0.99)
	if rep.ReadP99BaselineMs > 0 {
		rep.P99Ratio = rep.ReadP99MixedMs / rep.ReadP99BaselineMs
	}

	// Phase 3: drain what the paced loop has not folded yet, then reconcile
	// the cold path against the analytic model exactly.
	for dlog.PendingCells() > 0 {
		rep.DrainTicks++
		if err := tick(); err != nil {
			return nil, err
		}
	}
	rep.CompactionTicks, rep.CompactedCells, rep.CompactedBytes = comp.Ticks()
	rep.MaxTickCells = maxTickCells
	rep.MaxTickFraction = float64(maxTickCells) / float64(rep.Cells)

	n := o.reconcile
	if n > len(regions) {
		n = len(regions)
	}
	for i, r := range regions[:n] {
		if err := bs.fs.Pool().Reset(ctx); err != nil {
			return nil, err
		}
		pred := bs.fs.Layout().Query(r)
		var tally storage.PoolTally
		tctx := storage.WithPoolTally(ctx, &tally)
		got, _, err := bs.fs.SumCtx(tctx, r, decodeMeasure)
		if err != nil {
			return nil, err
		}
		if err := check(i, got); err != nil {
			return nil, err
		}
		obs := tally.Stats()
		rep.PredictedPages += pred.Pages
		rep.PredictedSeeks += pred.Seeks
		rep.ObservedPageReads += obs.Misses
		rep.ObservedSeeks += tally.Seeks()
		if obs.Misses != pred.Pages || tally.Seeks() != pred.Seeks {
			return nil, fmt.Errorf("ingestbench: region %v after compaction: observed %d pages / %d seeks, model predicts %d / %d",
				r, obs.Misses, tally.Seeks(), pred.Pages, pred.Seeks)
		}
	}
	rep.ReconcileQueries = n

	// Phase 4: incremental re-clustering. A second copy of the warehouse on
	// a row-major order migrates region-by-region onto the DP-optimal snaked
	// order, worst regions first, with a pending upsert riding along.
	if err := ingestReclusterPhase(ctx, bs, regions[:n], payloads[0], rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// ingestReclusterPhase builds the suboptimal store, migrates it in bounded
// ticks, and fills the recluster fields of the report.
func ingestReclusterPhase(ctx context.Context, bs *benchStore, regions []linear.Region, pending cellPayload, rep *IngestReport) error {
	dims := make([]int, bs.ds.Schema.K())
	for d := range dims {
		dims[d] = d
	}
	rowOrder, err := linear.RowMajor(bs.ds.Schema, dims)
	if err != nil {
		return err
	}
	rowPath := filepath.Join(bs.dir, "recluster.db")
	rowFS, err := storage.CreateFileStore(rowPath, rowOrder, bs.framed, int(bs.ds.Config.PageBytes), bs.frames)
	if err != nil {
		return err
	}
	defer rowFS.Close()
	shape := bs.ds.Schema.LeafCounts()
	nSupp, nTime := shape[1], shape[2]
	payload := make([]byte, bs.ds.Config.RecordBytes)
	var loadErr error
	bs.ds.EachRecord(func(li *tpcd.LineItem) bool {
		part, supp, day := li.Cell()
		binary.LittleEndian.PutUint64(payload[:8], math.Float64bits(li.ExtendedPrice))
		loadErr = rowFS.PutRecord((part*nSupp+supp)*nTime+day, payload)
		return loadErr == nil
	})
	if loadErr != nil {
		return loadErr
	}
	if err := rowFS.Pool().Flush(); err != nil {
		return err
	}

	// Predicted seeks of both layouts over the sampled stream: the starting
	// regret shows how far row-major sits from the DP target.
	rowLayout, err := storage.NewFileLayout(rowOrder, bs.framed, bs.ds.Config.PageBytes)
	if err != nil {
		return err
	}
	var rowSeeks, optSeeks int64
	for _, r := range regions {
		rowSeeks += rowLayout.Query(r).Seeks
		optSeeks += bs.fs.Layout().Query(r).Seeks
	}
	if optSeeks == 0 {
		return fmt.Errorf("ingestbench: sampled stream predicts zero seeks on the optimal layout")
	}
	rep.StartRegret = float64(rowSeeks) / float64(optSeeks)

	// A pending delta rides along: attach a log with one upsert so the
	// migration folds the freshest payload into the new clustering.
	rlog, err := ingest.Open(filepath.Join(bs.dir, "recluster.delta"), 0, ingest.Options{Policy: ingest.SyncNone})
	if err != nil {
		return err
	}
	defer rlog.Close()
	if err := rlog.Put(pending.cell, pending.framed); err != nil {
		return err
	}
	rowFS.SetOverlay(rlog.Overlay())

	total := rowOrder.Len()
	opt := ingest.RegionMigrateOptions{RegionCells: 64, MaxCellsPerTick: total/16 + 1}
	rep.ReclusterMaxTickFraction = float64(opt.MaxCellsPerTick) / float64(total)
	dst, ticks, err := ingest.MigrateRegionsCtx(ctx, rowFS, filepath.Join(bs.dir, "recluster.opt.db"), bs.order, bs.frames, rlog, opt)
	if err != nil {
		return err
	}
	defer dst.Close()
	rep.ReclusterTicks = ticks

	// Converged regret: observed seeks on the migrated store, cold, against
	// the DP-optimal prediction. Content is also revalidated via the sums.
	var obsSeeks int64
	for i, r := range regions {
		if err := dst.Pool().Reset(ctx); err != nil {
			return err
		}
		var tally storage.PoolTally
		tctx := storage.WithPoolTally(ctx, &tally)
		got, _, err := dst.SumCtx(tctx, r, decodeMeasure)
		if err != nil {
			return err
		}
		obsSeeks += tally.Seeks()
		var want float64
		if want, _, err = bs.fs.SumCtx(ctx, r, decodeMeasure); err != nil {
			return err
		}
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			return fmt.Errorf("ingestbench: migrated store query %d: sum %v, want %v", i, got, want)
		}
	}
	rep.ConvergedRegret = float64(obsSeeks) / float64(optSeeks)
	os.Remove(filepath.Join(bs.dir, "recluster.opt.db"))
	return nil
}
