package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tiny warehouse args shared by the smoke tests.
var tinyArgs = []string{"-parts", "2", "-days", "2", "-years", "2"}

func TestRunBadFlagIsUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "flag provided but not defined") {
		t.Errorf("stderr = %q, want flag diagnostic", errOut.String())
	}
}

func TestRunSummaryAndRecords(t *testing.T) {
	var out, errOut bytes.Buffer
	args := append(append([]string{}, tinyArgs...), "-records", "2")
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"cells:", "first 2 records:", "order="} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Two record lines exactly.
	if n := strings.Count(got, "order="); n != 2 {
		t.Errorf("printed %d records, want 2", n)
	}
}

func TestRunDeterministicUnderSeed(t *testing.T) {
	render := func() string {
		var out, errOut bytes.Buffer
		args := append(append([]string{}, tinyArgs...), "-seed", "7", "-records", "3")
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("exit code = %d, stderr = %s", code, errOut.String())
		}
		return out.String()
	}
	if render() != render() {
		t.Error("same seed produced different output")
	}
}

func TestRunCSVExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lineitem.csv")
	var out, errOut bytes.Buffer
	args := append(append([]string{}, tinyArgs...), "-csv", path)
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "wrote ") {
		t.Error("output missing the export summary")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV has %d lines, want header plus records", len(lines))
	}
	if !strings.HasPrefix(lines[0], "orderkey,partkey,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}
