// Command tpcdgen generates the synthetic TPC-D warehouse, reports its
// occupancy statistics, and optionally dumps a sample of LineItem records
// or compares clustering layouts for one workload mix.
//
// Usage:
//
//	tpcdgen [-parts 40] [-days 30] [-years 7] [-seed 1999]
//	        [-records n]  print the first n generated records
//	        [-compare]    pack and compare the six row-major layouts and
//	                      the (snaked) optimal path for the featured workload
//
// Exit status: 0 on success, 1 on generation or I/O errors, 2 on usage
// errors.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/tpcd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, writes reports to
// stdout, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tpcdgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	parts := fs.Int("parts", 40, "parts per manufacturer")
	days := fs.Int("days", 30, "days per month")
	years := fs.Int("years", 7, "years of ship dates")
	seed := fs.Uint64("seed", 1999, "generation seed")
	records := fs.Int("records", 0, "print the first n records")
	csvPath := fs.String("csv", "", "export all records to this CSV file")
	compare := fs.Bool("compare", false, "compare layouts under the featured workload")
	samples := fs.Int("samples", 32, "queries sampled per class for -compare")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := generate(stdout, *parts, *days, *years, *seed, *records, *csvPath, *compare, *samples); err != nil {
		fmt.Fprintln(stderr, "tpcdgen:", err)
		return 1
	}
	return 0
}

func generate(out io.Writer, parts, days, years int, seed uint64, records int, csvPath string, compare bool, samples int) error {
	cfg := tpcd.DefaultConfig()
	cfg.PartsPerMfr = parts
	cfg.DaysPerMonth = days
	cfg.Years = years
	cfg.Seed = seed

	ds, err := tpcd.Build(cfg)
	if err != nil {
		return err
	}
	sum := ds.Summarize()
	fmt.Fprintf(out, "schema: %v\n", ds.Schema)
	fmt.Fprintf(out, "cells: %d   records: %d   bytes: %.1f MB   empty cells: %d (%.1f%%)   max records/cell: %d\n",
		sum.Cells, sum.Records, float64(sum.TotalBytes)/1e6,
		sum.EmptyCells, 100*float64(sum.EmptyCells)/float64(sum.Cells), sum.MaxCell)
	fmt.Fprintf(out, "pages at %d B/page: %d\n", cfg.PageBytes, (sum.TotalBytes+cfg.PageBytes-1)/cfg.PageBytes)

	fmt.Fprintln(out, "\nTPC-D query classes (parts, supplier, time levels):")
	for _, q := range tpcd.QueryClasses() {
		fmt.Fprintf(out, "  %-4s %v  %s\n", q.Name, q.Class, q.Desc)
	}

	if csvPath != "" {
		n, err := exportCSV(ds, csvPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %d records to %s\n", n, csvPath)
	}

	if records > 0 {
		fmt.Fprintf(out, "\nfirst %d records:\n", records)
		n := 0
		ds.EachRecord(func(li *tpcd.LineItem) bool {
			fmt.Fprintf(out, "  order=%d part=%d supp=%d day=%d qty=%d price=%.2f disc=%.2f\n",
				li.OrderKey, li.PartKey, li.SuppKey, li.ShipDay, li.Quantity, li.ExtendedPrice, li.Discount)
			n++
			return n < records
		})
	}

	if compare {
		mx := tpcd.PaperWorkload7()
		w, err := ds.Workload(mx)
		if err != nil {
			return err
		}
		m := experiments.NewMeasurer(ds)
		m.SamplesPerClass = samples
		fmt.Fprintf(out, "\nlayout comparison under workload %v:\n", mx)
		fmt.Fprintf(out, "%-28s %14s %14s\n", "strategy", "norm blocks", "seeks/query")

		opt, err := core.Optimal(w)
		if err != nil {
			return err
		}
		for _, snaked := range []bool{false, true} {
			st, err := m.PathStats(opt.Path, snaked)
			if err != nil {
				return err
			}
			seeks, norm := experiments.Expected(ds.Lattice, st, w)
			name := "optimal lattice path"
			if snaked {
				name = "snaked " + name
			}
			fmt.Fprintf(out, "%-28s %14.2f %14.2f\n", name, norm, seeks)
		}
		for _, perm := range experiments.Permutations3 {
			st, err := m.RowMajorStats(perm)
			if err != nil {
				return err
			}
			seeks, norm := experiments.Expected(ds.Lattice, st, w)
			fmt.Fprintf(out, "%-28s %14.2f %14.2f\n", fmt.Sprintf("row major %v", perm), norm, seeks)
		}
	}
	return nil
}

// exportCSV streams every LineItem record to a CSV file with a TPC-D-ish
// column set.
func exportCSV(ds *tpcd.Dataset, path string) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{
		"orderkey", "partkey", "suppkey", "shipday", "quantity",
		"extendedprice", "discount", "tax", "returnflag", "linestatus",
	}); err != nil {
		return 0, err
	}
	var n int64
	var werr error
	ds.EachRecord(func(li *tpcd.LineItem) bool {
		rec := []string{
			strconv.FormatInt(li.OrderKey, 10),
			strconv.Itoa(int(li.PartKey)),
			strconv.Itoa(int(li.SuppKey)),
			strconv.Itoa(int(li.ShipDay)),
			strconv.Itoa(int(li.Quantity)),
			strconv.FormatFloat(li.ExtendedPrice, 'f', 2, 64),
			strconv.FormatFloat(li.Discount, 'f', 2, 64),
			strconv.FormatFloat(li.Tax, 'f', 2, 64),
			string(li.ReturnFlag),
			string(li.LineStatus),
		}
		if werr = w.Write(rec); werr != nil {
			return false
		}
		n++
		return true
	})
	if werr != nil {
		return n, werr
	}
	w.Flush()
	return n, w.Error()
}
