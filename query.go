package snakes

import (
	"fmt"

	"repro/internal/hierarchy"
	"repro/internal/lattice"
)

// GridQuery is a grid query in the paper's sense: one hierarchy node per
// dimension, written as value-level predicates. Dimensions without a
// predicate select their root (the whole range), like Example 1's
// "jeans = any".
//
// A GridQuery builder is NOT safe for concurrent use: build it (Where
// chain) on one goroutine, then share the resulting Class and Region
// values, which are plain data. The Schema it queries is itself safe to
// share.
type GridQuery struct {
	schema *Schema
	refs   []hierarchy.TreeNodeRef
	err    error
}

// SchemaFromTrees builds a schema from explicit (possibly unbalanced)
// hierarchy trees, balancing them with dummy nodes as needed (Section 4.1)
// and retaining label indexes so queries can be written against node
// labels. Dimension order follows the argument order.
func SchemaFromTrees(trees ...*Tree) (*Schema, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("snakes: no hierarchy trees")
	}
	dims := make([]Dimension, len(trees))
	idx := make([]*hierarchy.Index, len(trees))
	for i, t := range trees {
		bal := t.Balance()
		d, _, err := bal.Dimension()
		if err != nil {
			return nil, err
		}
		dims[i] = d
		if idx[i], err = bal.Index(); err != nil {
			return nil, err
		}
	}
	s, err := BuildSchema(dims...)
	if err != nil {
		return nil, err
	}
	s.idx = idx
	return s, nil
}

// Query starts a grid query against a schema built with SchemaFromTrees.
// Chain Where calls and finish with Class or Region:
//
//	q := schema.Query().Where("location", "NY").Where("jeans", "levi's")
//	class, err := q.Class()   // the query's class, e.g. (1,1)
//	region, err := q.Region() // its cell footprint
func (s *Schema) Query() *GridQuery {
	q := &GridQuery{schema: s, refs: make([]hierarchy.TreeNodeRef, len(s.schema.Dims))}
	if s.idx == nil {
		q.err = fmt.Errorf("snakes: schema was not built from labeled trees; use SchemaFromTrees")
		return q
	}
	for d, ix := range s.idx {
		q.refs[d] = ix.Root()
	}
	return q
}

// Where restricts one dimension to the node with the given label. Labels
// repeated across levels need WhereAt.
func (q *GridQuery) Where(dim, label string) *GridQuery {
	return q.where(dim, func(ix *hierarchy.Index) (hierarchy.TreeNodeRef, error) {
		return ix.Find(label)
	})
}

// WhereAt restricts one dimension to the node with the given label at an
// explicit hierarchy level (0 = leaves).
func (q *GridQuery) WhereAt(dim, label string, level int) *GridQuery {
	return q.where(dim, func(ix *hierarchy.Index) (hierarchy.TreeNodeRef, error) {
		return ix.FindAt(label, level)
	})
}

func (q *GridQuery) where(dim string, find func(*hierarchy.Index) (hierarchy.TreeNodeRef, error)) *GridQuery {
	if q.err != nil {
		return q
	}
	d := q.schema.schema.DimIndex(dim)
	if d < 0 {
		q.err = fmt.Errorf("snakes: no dimension %q", dim)
		return q
	}
	ref, err := find(q.schema.idx[d])
	if err != nil {
		q.err = err
		return q
	}
	q.refs[d] = ref
	return q
}

// Class returns the query's class: the vector of the selected nodes'
// levels (Definition 1).
func (q *GridQuery) Class() (Class, error) {
	if q.err != nil {
		return nil, q.err
	}
	c := make(lattice.Point, len(q.refs))
	for d, ref := range q.refs {
		c[d] = ref.Level
	}
	return c, nil
}

// Region returns the query's cell footprint: the leaf ranges below the
// selected nodes.
func (q *GridQuery) Region() (Region, error) {
	if q.err != nil {
		return nil, q.err
	}
	r := make(Region, len(q.refs))
	for d, ref := range q.refs {
		lo, hi, err := q.schema.idx[d].LeafRange(ref)
		if err != nil {
			return nil, err
		}
		r[d] = Range{Lo: lo, Hi: hi}
	}
	return r, nil
}

// Err returns the first resolution error, if any.
func (q *GridQuery) Err() error { return q.err }
