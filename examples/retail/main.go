// Retail: the paper's Section-2 example — jeans sales by type and location —
// reproduced end to end, including the order-of-magnitude gap between
// clustering strategies and the effect of snaking.
package main

import (
	"fmt"
	"log"

	snakes "repro"
)

func main() {
	// The Figure-1 schema, scaled up: jeans have type → brand → all and
	// locations have city → state → all, fanout 32 at both levels (the
	// Table-3 configuration where strategy choice matters most).
	schema := snakes.NewSchema(
		snakes.Dim("jeans", 32, 32),
		snakes.Dim("location", 32, 32),
	)
	fmt.Printf("schema: 1024×1024 grid, %d classes\n", schema.NumClasses())

	// Workload 3 of Example 1: only queries that drill into a single jean
	// type — per city, per state, or nationwide — plus per-cell lookups.
	w := schema.ClassWorkload(
		snakes.Class{0, 0}, // one jean, one city
		snakes.Class{0, 1}, // one jean, one state
		snakes.Class{0, 2}, // one jean, nationwide
		snakes.Class{1, 2}, // one brand, nationwide
	)

	opt, err := snakes.Optimize(w)
	if err != nil {
		log.Fatal(err)
	}
	costOpt, err := opt.ExpectedCost(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal snaked path %v: %.3f seeks/query\n", opt.Path, costOpt)

	// The wrong row-major order pays dearly: location-major clustering
	// scatters each jean's cells across the whole disk.
	for name, dims := range map[string][]int{
		"jeans-major":    {0, 1},
		"location-major": {1, 0},
	} {
		rm, err := schema.RowMajor(dims...)
		if err != nil {
			log.Fatal(err)
		}
		c, err := rm.ExpectedCost(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %12.3f seeks/query (%.0fx the optimum)\n", name, c, c/costOpt)
	}

	// The Hilbert curve — the classical recommendation — is also beaten on
	// this workload (Section 7: lattice paths can be arbitrarily better
	// than Hilbert on some workloads).
	h, err := schema.Hilbert()
	if err != nil {
		log.Fatal(err)
	}
	ch := schema.EvaluateOrder(h, w)
	fmt.Printf("%-15s %12.3f seeks/query (%.0fx the optimum)\n", "hilbert", ch, ch/costOpt)

	// Snaking benefit per class (Theorem 3 caps it below 2).
	unsnaked := opt.WithSnaking(false)
	cu, err := unsnaked.ExpectedCost(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snaking improves the optimal path by %.3fx overall\n", cu/costOpt)
	for _, c := range []snakes.Class{{0, 2}, {1, 2}} {
		fmt.Printf("  class %v: benefit %.3fx\n", c, unsnaked.SnakingBenefit(c))
	}
}
