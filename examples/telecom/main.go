// Telecom: the introduction's motivating scenario — call detail records
// queried by telephone number and month — with a packed disk layout and
// measured page-level costs, including unbalanced geography handled by
// dummy-node balancing (Section 4.1).
package main

import (
	"fmt"
	"log"

	snakes "repro"
)

func main() {
	// Call-detail fact table:
	//   phone: number → exchange → area (20 numbers/exchange, 16 exchanges/area, 8 areas)
	//   time:  day → month → all   (30 days, 12 months)
	schema := snakes.NewSchema(
		snakes.Dim("phone", 20, 16, 8),
		snakes.Dim("time", 30, 12),
	)
	fmt.Printf("CDR grid: %d cells\n", schema.NumCells())

	// "40% of the queries concern calls made from some specific telephone
	// number in some month" — plus billing rollups and area audits.
	w := schema.NewWorkload()
	w.Set(snakes.Class{0, 1}, 0.40) // one number, one month
	w.Set(snakes.Class{0, 2}, 0.20) // one number, all time
	w.Set(snakes.Class{1, 1}, 0.15) // one exchange, one month
	w.Set(snakes.Class{2, 1}, 0.15) // one area, one month
	w.Set(snakes.Class{0, 0}, 0.10) // one number, one day
	if err := w.Validate(); err != nil {
		log.Fatal(err)
	}

	opt, err := snakes.Optimize(w)
	if err != nil {
		log.Fatal(err)
	}
	costOpt, err := opt.ExpectedCost(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal strategy: %v (%.3f seeks/query)\n", opt, costOpt)

	// Pack a synthetic CDR table: ~3 calls per number per day at 100 bytes
	// each, onto 8 KB pages, and measure an actual "number × month" query.
	bytes := make([]int64, schema.NumCells())
	for i := range bytes {
		bytes[i] = int64(100 * (1 + i%5)) // skewed 100–500 bytes per cell
	}
	layout, err := opt.Pack(bytes, snakes.DefaultPageSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packed %d pages (%.1f MB)\n", layout.TotalPages(),
		float64(layout.TotalBytes())/1e6)

	// Query: number 1234's calls in month 7 (days 210–239).
	q := snakes.Region{{Lo: 1234, Hi: 1235}, {Lo: 210, Hi: 240}}
	st := layout.Query(q)
	fmt.Printf("number×month query: %d bytes in %d pages, %d seek(s)\n",
		st.Bytes, st.Pages, st.Seeks)

	// Compare with a time-major row-major layout, the common default.
	rm, err := schema.RowMajor(1, 0)
	if err != nil {
		log.Fatal(err)
	}
	rmLayout, err := rm.Pack(bytes, snakes.DefaultPageSize)
	if err != nil {
		log.Fatal(err)
	}
	st2 := rmLayout.Query(q)
	fmt.Printf("same query, time-major layout: %d pages, %d seek(s)\n", st2.Pages, st2.Seeks)

	// Unbalanced geography: a region tree where one area has no exchange
	// level is balanced with dummy nodes and used like any dimension.
	tree, err := snakes.NewTree("region", snakes.Branch("all",
		snakes.Branch("metro",
			snakes.Branch("east", snakes.Leaf("e1"), snakes.Leaf("e2")),
			snakes.Branch("west", snakes.Leaf("w1"), snakes.Leaf("w2")),
		),
		snakes.Leaf("rural"), // no exchange level at all
	))
	if err != nil {
		log.Fatal(err)
	}
	dim, avg, err := tree.Balance().Dimension()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balanced region hierarchy: %d levels, average fanouts %v\n",
		dim.Levels(), avg)
	small, err := snakes.BuildSchema(dim, snakes.Dim("day", 7))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := snakes.Optimize(small.UniformWorkload()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimized the unbalanced-region schema successfully")
}
