// Quickstart: define a star schema, describe the expected workload, and get
// the optimal snaked clustering strategy with its disk order.
package main

import (
	"fmt"
	"log"

	snakes "repro"
)

func main() {
	// A sales fact table with two dimensions:
	//   product: item → category → all     (8 items per category, 4 categories)
	//   time:    day → month → all         (30 days per month, 12 months)
	schema := snakes.NewSchema(
		snakes.Dim("product", 8, 4),
		snakes.Dim("time", 30, 12),
	)
	fmt.Printf("grid: %d cells, %d query classes\n", schema.NumCells(), schema.NumClasses())

	// The workload, as probabilities over query classes (product level,
	// time level). Say 40%% of queries ask about one item across a month,
	// 35%% about a category across a month, 25%% about one item on one day.
	w := schema.NewWorkload()
	w.Set(snakes.Class{0, 1}, 0.40) // item × month
	w.Set(snakes.Class{1, 1}, 0.35) // category × month
	w.Set(snakes.Class{0, 0}, 0.25) // item × day
	if err := w.Validate(); err != nil {
		log.Fatal(err)
	}

	// Find the optimal snaked lattice path: within 2× of the globally
	// optimal clustering, in time linear in the lattice size.
	strategy, err := snakes.Optimize(w)
	if err != nil {
		log.Fatal(err)
	}
	cost, err := strategy.ExpectedCost(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal strategy: %v\n", strategy)
	fmt.Printf("expected seeks per query: %.3f\n", cost)

	// Compare against the two row-major layouts a DBA might pick by hand.
	for _, dims := range [][]int{{0, 1}, {1, 0}} {
		rm, err := schema.RowMajor(dims...)
		if err != nil {
			log.Fatal(err)
		}
		c, err := rm.ExpectedCost(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("row major %v: %.3f seeks per query (%.1fx worse)\n", dims, c, c/cost)
	}

	// Materialize the winning order: order.CellAt(p) is the cell stored at
	// disk position p.
	order, err := strategy.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first 10 cells on disk: ")
	for p := 0; p < 10; p++ {
		fmt.Printf("%d ", order.CellAt(p))
	}
	fmt.Println()
}
