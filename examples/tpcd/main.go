// TPC-D: the paper's Section-6 evaluation in miniature — generate the
// synthetic LineItem warehouse, derive the TPC-D query-class workload,
// optimize, pack, and measure against row-major baselines.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/linear"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

func main() {
	cfg := tpcd.DefaultConfig()
	cfg.PartsPerMfr = 10 // keep the example quick; -full sizes live in cmd/snakebench
	cfg.DaysPerMonth = 6
	cfg.Years = 4

	ds, err := tpcd.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sum := ds.Summarize()
	fmt.Printf("warehouse: %v\n", ds.Schema)
	fmt.Printf("%d cells, %d LineItem records (%.1f MB, %d empty cells)\n",
		sum.Cells, sum.Records, float64(sum.TotalBytes)/1e6, sum.EmptyCells)

	// Build a workload straight from the TPC-D query mix: Q1 and Q6
	// dominate, the others share the rest.
	w, err := ds.QueryClassWorkload(map[string]float64{
		"Q1": 0.25, "Q6": 0.25, "Q5": 0.10, "Q9": 0.10,
		"Q14": 0.10, "Q15": 0.10, "Q19": 0.10,
	})
	if err != nil {
		log.Fatal(err)
	}

	opt, err := core.Optimal(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal lattice path for the TPC-D query mix:\n  %v\n", opt.Path)

	m := experiments.NewMeasurer(ds)
	m.SamplesPerClass = 24
	fmt.Printf("\n%-28s %14s %14s\n", "strategy", "norm blocks", "seeks/query")
	for _, snaked := range []bool{false, true} {
		st, err := m.PathStats(opt.Path, snaked)
		if err != nil {
			log.Fatal(err)
		}
		seeks, norm := experiments.Expected(ds.Lattice, st, w)
		name := "optimal lattice path"
		if snaked {
			name = "snaked " + name
		}
		fmt.Printf("%-28s %14.2f %14.2f\n", name, norm, seeks)
	}
	for _, perm := range experiments.Permutations3 {
		st, err := m.RowMajorStats(perm)
		if err != nil {
			log.Fatal(err)
		}
		seeks, norm := experiments.Expected(ds.Lattice, st, w)
		fmt.Printf("%-28s %14.2f %14.2f\n", fmt.Sprintf("row major %v", perm), norm, seeks)
	}
	fmt.Println("\n(dimension order: 0=parts, 1=supplier, 2=time)")

	// Execute a real aggregate query against the packed store: total
	// quantity shipped by manufacturer 2 in year 1 (TPC-D Q9 shape).
	runAggregate(ds, opt)
}

// runAggregate loads the LineItem records into a paged store clustered by
// the snaked optimal path and executes SUM(quantity) for one grid query,
// reporting the I/O it actually cost.
func runAggregate(ds *tpcd.Dataset, opt core.Result) {
	order, err := linear.FromPath(ds.Schema, opt.Path, true)
	if err != nil {
		log.Fatal(err)
	}
	// Reserve framed capacity per cell: each record stores a 4-byte
	// quantity payload.
	bytes := make([]int64, len(ds.BytesPerCell))
	for i, b := range ds.BytesPerCell {
		records := b / int64(ds.Config.RecordBytes)
		bytes[i] = records * storage.FrameSize(4)
	}
	store, err := storage.NewStore(order, bytes, ds.Config.PageBytes)
	if err != nil {
		log.Fatal(err)
	}
	shape := ds.Schema.LeafCounts()
	payload := make([]byte, 4)
	var want int64
	daysPerYear := ds.Config.DaysPerMonth * ds.Config.MonthsPerYear
	region := linear.Region{
		{Lo: 2 * ds.Config.PartsPerMfr, Hi: 3 * ds.Config.PartsPerMfr}, // manufacturer 2
		{Lo: 0, Hi: shape[1]},                  // all suppliers
		{Lo: daysPerYear, Hi: 2 * daysPerYear}, // year 1
	}
	coords := make([]int, 3)
	ds.EachRecord(func(li *tpcd.LineItem) bool {
		p, s, d := li.Cell()
		binary.LittleEndian.PutUint32(payload, uint32(li.Quantity))
		cell := order.CellIndex([]int{p, s, d})
		if err := store.PutRecord(cell, payload); err != nil {
			log.Fatal(err)
		}
		coords[0], coords[1], coords[2] = p, s, d
		if region.Contains(coords) {
			want += int64(li.Quantity)
		}
		return true
	})
	got, io, err := store.Sum(region, func(rec []byte) float64 {
		return float64(binary.LittleEndian.Uint32(rec))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSUM(quantity) for manufacturer 2 × year 1: %.0f (expected %d)\n", got, want)
	fmt.Printf("executed in %d page reads, %d seeks\n", io.Pages, io.Seeks)
}
