// Adaptive: learn the workload from the query stream and re-cluster when
// it drifts — the scenario the paper credits to Tom Mitchell's question on
// "adapting the design of databases in response to learned workload
// characteristics". A synthetic query stream shifts from per-day reporting
// to per-month analytics; the estimator tracks it and re-optimization
// recovers the lost locality.
package main

import (
	"fmt"
	"log"
	"math/rand"

	snakes "repro"
)

func main() {
	// An ops metrics warehouse: host → rack → all, and minute → hour → all.
	schema := snakes.NewSchema(
		snakes.Dim("host", 16, 8),
		snakes.Dim("time", 60, 24),
	)

	// Phase 1 of the stream: mostly single-host, single-hour queries.
	phase1 := []struct {
		c snakes.Class
		p float64
	}{
		{snakes.Class{0, 1}, 0.7}, // host × hour
		{snakes.Class{1, 1}, 0.2}, // rack × hour
		{snakes.Class{0, 0}, 0.1}, // host × minute
	}
	// Phase 2: capacity planning takes over — whole-day scans per rack.
	phase2 := []struct {
		c snakes.Class
		p float64
	}{
		{snakes.Class{1, 2}, 0.6}, // rack × all time
		{snakes.Class{0, 2}, 0.3}, // host × all time
		{snakes.Class{1, 1}, 0.1},
	}

	rng := rand.New(rand.NewSource(2026))
	sample := func(mix []struct {
		c snakes.Class
		p float64
	}) snakes.Class {
		u := rng.Float64()
		acc := 0.0
		for _, m := range mix {
			acc += m.p
			if u <= acc {
				return m.c
			}
		}
		return mix[len(mix)-1].c
	}

	est := schema.NewEstimator()
	observe := func(mix []struct {
		c snakes.Class
		p float64
	}, n int) {
		for i := 0; i < n; i++ {
			if err := est.Observe(sample(mix)); err != nil {
				log.Fatal(err)
			}
		}
	}

	report := func(label string) *snakes.Strategy {
		w, err := est.Workload(0.5)
		if err != nil {
			log.Fatal(err)
		}
		st, err := snakes.Optimize(w)
		if err != nil {
			log.Fatal(err)
		}
		c, err := st.ExpectedCost(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d queries observed → %v, %.3f seeks/query\n",
			label, est.Total(), st.Path, c)
		return st
	}

	observe(phase1, 5000)
	st1 := report("after phase 1")

	// The workload drifts; the old layout decays.
	observe(phase2, 20000)
	w2, err := est.Workload(0.5)
	if err != nil {
		log.Fatal(err)
	}
	cOld, err := st1.ExpectedCost(w2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase-1 layout under the drifted workload: %.3f seeks/query\n", cOld)

	st2 := report("after phase 2")
	cNew, err := st2.ExpectedCost(w2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-clustering recovers %.1f%% of the expected seeks\n",
		100*(cOld-cNew)/cOld)
}
