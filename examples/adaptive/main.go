// Adaptive: learn the workload from the live query stream and re-cluster
// the store when it drifts — the scenario the paper credits to Tom
// Mitchell's question on "adapting the design of databases in response to
// learned workload characteristics". An ops metrics store serves per-host,
// per-hour reporting queries; incident analysis takes over with fleet-wide
// per-minute scans that run against the clustering grain; the reorganizer
// notices the regret, migrates the page file onto the new optimum in the
// background, and the same scans get cheaper.
//
// This drives the real subsystem end to end: a paged FileStore on disk, a
// snakes.Reorganizer running its policy loop, and a physical MigrateCtx
// hot-swap — the same mechanism `snakestore serve -adapt` uses, minus the
// HTTP layer and catalog.
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	snakes "repro"
)

func main() {
	// An ops metrics warehouse: 8 hosts in 2 racks, 24 "minutes" in 4
	// "hours". 192 grid cells, one record per cell.
	schema := snakes.NewSchema(
		snakes.Dim("host", 4, 2),
		snakes.Dim("time", 6, 4),
	)

	// Deploy the optimum for the reporting workload: single host, single
	// hour — class {0,1}.
	st0, err := snakes.Optimize(schema.ClassWorkload(snakes.Class{0, 1}))
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "adaptive-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cells := make([]int64, schema.NumCells())
	for i := range cells {
		cells[i] = snakes.FrameSize(8)
	}
	fs, err := st0.CreateFileStore(filepath.Join(dir, "metrics.g0.db"), cells, 64, 16)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 8)
	for c := 0; c < schema.NumCells(); c++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(c)))
		if err := fs.PutRecord(c, buf); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("generation 0 deployed on %v\n", st0.Path)

	// The serving store lives behind an atomic pointer, exactly as in the
	// daemon: queries snapshot it, the migrator swaps it.
	var store atomic.Pointer[snakes.FileStore]
	store.Store(fs)

	// The migrator is the mechanism half of the loop: physically re-cluster
	// into the next generation file, swap the serving store, drop the old
	// one. The daemon does the same plus catalog persistence and a scrub.
	newPath := func(gen int) string {
		return filepath.Join(dir, fmt.Sprintf("metrics.g%d.db", gen))
	}
	migrate := func(ctx context.Context, d *snakes.ReorgDecision) error {
		old := store.Load()
		dst, err := d.Strategy.MigrateCtx(ctx, old, newPath(d.Generation), 16, d.Progress)
		if err != nil {
			return err
		}
		store.Store(dst)
		return old.Close() // drains in-flight readers, then frees the file
	}
	reorg, err := snakes.NewReorganizer(st0, 0, migrate, snakes.ReorgConfig{
		CheckInterval:   5 * time.Millisecond,
		HalfLife:        2 * time.Second, // old traffic fades fast in this demo
		Smoothing:       0.1,
		MinWeight:       50,
		RegretThreshold: 1.2,
		Hysteresis:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Remember the regret measurement that tripped the policy (the gauge
	// the daemon exports as snakestore_reorg_regret).
	var tripRegret atomic.Uint64
	reorg.OnEvaluate(func(ev snakes.ReorgEvaluation) {
		if ev.Eligible {
			tripRegret.Store(math.Float64bits(ev.Regret))
		}
	})

	// serve executes one real query against the current store, reports it
	// to the reorganizer (exactly what the daemon's /query handler does),
	// and returns the physical seeks the buffer pool performed. A query
	// caught by the hot-swap sees ErrClosed and retries on the fresh
	// generation — no request is lost to a reorganization.
	serve := func(r snakes.Region) int64 {
		if err := reorg.ObserveRegion(r); err != nil {
			log.Fatal(err)
		}
		for {
			var tally snakes.PoolTally
			qctx := snakes.WithPoolTally(context.Background(), &tally)
			err := store.Load().ReadQueryCtx(qctx, r, func(int, []byte) error { return nil })
			if errors.Is(err, snakes.ErrClosed) {
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			return tally.Seeks()
		}
	}

	rng := rand.New(rand.NewSource(2026))
	reporting := func() snakes.Region { // one host, one hour: class {0,1}
		h, b := rng.Intn(8), rng.Intn(4)
		return snakes.Region{{Lo: h, Hi: h + 1}, {Lo: 6 * b, Hi: 6*b + 6}}
	}
	incident := func() snakes.Region { // every host, one minute: class {2,0}
		m := rng.Intn(24)
		return snakes.Region{{Lo: 0, Hi: 8}, {Lo: m, Hi: m + 1}}
	}

	// Phase 1: the layout matches the traffic.
	for i := 0; i < 300; i++ {
		serve(reporting())
	}
	fmt.Printf("reporting phase served; generation still %d\n", reorg.Generation())

	// Phase 2: incident analysis takes over. Per-minute fleet scans cut
	// across the host-major clustering — count their cost on the stale
	// layout before the policy is allowed to react.
	var driftSeeks int64
	const driftQueries = 300
	for i := 0; i < driftQueries; i++ {
		driftSeeks += serve(incident())
	}
	fmt.Printf("drifted: %d fleet scans cost %.1f seeks each on the stale layout\n",
		driftQueries, float64(driftSeeks)/driftQueries)

	// Now start the policy loop, exactly as the daemon runs it, and keep
	// serving while it works: regret above threshold, sustained across the
	// hysteresis window, triggers the background migration and hot-swap
	// under live traffic.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go reorg.Run(ctx)
	deadline := time.Now().Add(10 * time.Second)
	for reorg.Generation() == 0 {
		if time.Now().After(deadline) {
			log.Fatalf("reorganizer never fired: %+v", reorg.Status())
		}
		serve(incident())
	}
	status := reorg.Status()
	fmt.Printf("reorganized at regret %.2f: generation %d on %v (%d/%d cells in %.0f ms)\n",
		math.Float64frombits(tripRegret.Load()), status.Generation, reorg.Strategy().Path,
		status.MigratedCells, status.TotalCells, status.LastReorgSecs*1e3)

	// Reopen the new generation cold (migration wrote through its pool) and
	// replay the incident scans: the seeks drop to the new layout's optimum.
	cancel() // stop the policy loop before manually swapping the store
	warm := store.Load()
	loaded := warm.LoadedBytes()
	if err := warm.Close(); err != nil {
		log.Fatal(err)
	}
	cold, err := reorg.Strategy().OpenFileStore(newPath(reorg.Generation()), cells, 64, 16, loaded)
	if err != nil {
		log.Fatal(err)
	}
	defer cold.Close()
	store.Store(cold)
	var afterSeeks int64
	for i := 0; i < driftQueries; i++ {
		afterSeeks += serve(incident())
	}
	fmt.Printf("after reorg: the same scans cost %.1f seeks each (%.0f%% saved)\n",
		float64(afterSeeks)/driftQueries,
		100*(1-float64(afterSeeks)/float64(driftSeeks)))
}
