// OLAP: a drilldown/rollup session against a labeled star schema — the
// introduction's observation that "even a typical OLAP session … repeatedly
// invokes various grid queries". Queries are phrased against hierarchy node
// labels, executed against a packed store with real page accounting, fed to
// the workload estimator, and the learned workload drives re-clustering,
// whose chosen strategy is persisted as JSON.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	snakes "repro"
)

func main() {
	// Product and region hierarchies with real labels.
	product, err := snakes.NewTree("product", snakes.Branch("all products",
		snakes.Branch("apparel",
			snakes.Leaf("jeans"), snakes.Leaf("jackets"), snakes.Leaf("shirts"), snakes.Leaf("shoes")),
		snakes.Branch("home",
			snakes.Leaf("lamps"), snakes.Leaf("chairs"), snakes.Leaf("tables"), snakes.Leaf("rugs")),
	))
	if err != nil {
		log.Fatal(err)
	}
	region, err := snakes.NewTree("region", snakes.Branch("all regions",
		snakes.Branch("east", snakes.Leaf("nyc"), snakes.Leaf("boston")),
		snakes.Branch("west", snakes.Leaf("sf"), snakes.Leaf("seattle")),
	))
	if err != nil {
		log.Fatal(err)
	}
	schema, err := snakes.SchemaFromTrees(product, region)
	if err != nil {
		log.Fatal(err)
	}

	// Pack monthly sales: one 8-byte measure per cell.
	bytes := make([]int64, schema.NumCells())
	for i := range bytes {
		bytes[i] = snakes.FrameSize(8)
	}
	start, err := schema.RowMajor(0, 1) // initial layout: a plain row-major guess
	if err != nil {
		log.Fatal(err)
	}
	store, err := start.NewStore(bytes, 32)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	sales := make([]float64, schema.NumCells())
	buf := make([]byte, 8)
	for c := range sales {
		sales[c] = float64(100 + rng.Intn(900))
		binary.LittleEndian.PutUint64(buf, uint64(sales[c]))
		if err := store.PutRecord(c, buf); err != nil {
			log.Fatal(err)
		}
	}
	decode := func(rec []byte) float64 { return float64(binary.LittleEndian.Uint64(rec)) }

	// The session: rollup and drilldown, every step a grid query.
	est := schema.NewEstimator()
	session := []*snakes.GridQuery{
		schema.Query(), // cube: total sales
		schema.Query().Where("product", "apparel"),                         // drill into apparel
		schema.Query().Where("product", "apparel").Where("region", "east"), // slice east
		schema.Query().Where("product", "jeans").Where("region", "east"),   // drill to jeans
		schema.Query().Where("product", "jeans").Where("region", "nyc"),    // drill to the cell
		schema.Query().Where("region", "nyc"),                              // rollup products, keep nyc
		schema.Query().Where("region", "west"),                             // pivot west
		schema.Query().Where("product", "home").Where("region", "west"),    // drill home/west
	}
	fmt.Println("OLAP session (row-major layout):")
	for _, q := range session {
		region, err := q.Region()
		if err != nil {
			log.Fatal(err)
		}
		class, err := q.Class()
		if err != nil {
			log.Fatal(err)
		}
		total, io, err := store.Sum(region, decode)
		if err != nil {
			log.Fatal(err)
		}
		if err := est.Observe(class); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  class %v  sum=%6.0f  pages=%d seeks=%d\n", class, total, io.Pages, io.Seeks)
	}

	// Re-cluster for the observed session shape.
	w, err := est.Workload(0.25)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := snakes.Optimize(w)
	if err != nil {
		log.Fatal(err)
	}
	oldCost, err := start.ExpectedCost(w)
	if err != nil {
		log.Fatal(err)
	}
	newCost, err := opt.ExpectedCost(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlearned workload over %d queries → %v\n", est.Total(), opt)
	fmt.Printf("expected seeks/query: %.3f (row-major) → %.3f (optimized)\n", oldCost, newCost)

	// Persist the decision like a catalog would.
	blob, err := snakes.MarshalStrategy(opt)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := snakes.UnmarshalStrategy(schema, blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted strategy (%d bytes of JSON), restored as %v\n", len(blob), restored)
}
