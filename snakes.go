package snakes

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Dimension describes one dimension of a star schema by its bottom-up
// per-level fanouts; see Dim.
type Dimension = hierarchy.Dimension

// Dim builds a dimension named name whose hierarchy has the given fanouts,
// listed from the level just above the leaves upward. Dim("time", 30, 12, 7)
// is day → month (30 days each) → year (12 months) → all (7 years).
func Dim(name string, fanouts ...int) Dimension {
	return Dimension{Name: name, Fanouts: fanouts}
}

// Tree re-exports the explicit hierarchy tree for unbalanced dimensions;
// build one with snakes.Branch/snakes.Leaf, Balance it, and summarize it
// into a Dimension with its Dimension method (Section 4.1).
type Tree = hierarchy.Tree

// Branch and Leaf build explicit hierarchy trees.
var (
	Branch = hierarchy.Branch
	Leaf   = hierarchy.Leaf
)

// NewTree wraps an explicit hierarchy tree.
func NewTree(name string, root *hierarchy.Node) (*Tree, error) {
	return hierarchy.NewTree(name, root)
}

// Schema is a star schema together with its query-class lattice. Schemas
// built with SchemaFromTrees additionally carry label indexes that let
// queries be phrased against hierarchy node labels.
type Schema struct {
	schema *hierarchy.Schema
	lat    *lattice.Lattice
	idx    []*hierarchy.Index
}

// NewSchema builds a schema from dimensions; it panics on structurally
// invalid input (use BuildSchema for error returns).
func NewSchema(dims ...Dimension) *Schema {
	s, err := BuildSchema(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// BuildSchema builds a schema from dimensions.
func BuildSchema(dims ...Dimension) (*Schema, error) {
	hs, err := hierarchy.NewSchema(dims...)
	if err != nil {
		return nil, err
	}
	return &Schema{schema: hs, lat: lattice.New(hs)}, nil
}

// NumCells returns the number of grid cells of the fact table.
func (s *Schema) NumCells() int { return s.schema.NumCells() }

// NumClasses returns the number of query classes (the lattice size).
func (s *Schema) NumClasses() int { return s.lat.Size() }

// Class is a query class: one hierarchy level per dimension, leaves = 0.
type Class = lattice.Point

// Classes lists every query class of the schema in a fixed order.
func (s *Schema) Classes() []Class {
	out := make([]Class, 0, s.lat.Size())
	s.lat.Points(func(p lattice.Point) { out = append(out, p.Clone()) })
	return out
}

// Workload is a probability distribution over the schema's query classes.
// Like Schema and Strategy it is immutable-after-build: construct and
// populate it (Set/Normalize) on one goroutine, then share it freely —
// concurrent readers (Prob, ExpectedCost, Optimize) need no locking as
// long as no one mutates it anymore.
type Workload struct {
	schema *Schema
	w      *workload.Workload
}

// NewWorkload returns an empty workload; populate with Set and call
// Normalize or ensure the probabilities sum to one.
func (s *Schema) NewWorkload() *Workload {
	return &Workload{schema: s, w: workload.New(s.lat)}
}

// UniformWorkload makes every query class equally likely.
func (s *Schema) UniformWorkload() *Workload {
	return &Workload{schema: s, w: workload.Uniform(s.lat)}
}

// ClassWorkload distributes probability uniformly over the given classes.
func (s *Schema) ClassWorkload(classes ...Class) *Workload {
	return &Workload{schema: s, w: workload.UniformOver(s.lat, classes...)}
}

// Set assigns weight to a class (weights need not be normalized if you call
// Normalize afterwards).
func (w *Workload) Set(c Class, p float64) { w.w.Set(c, p) }

// Prob returns the probability of a class.
func (w *Workload) Prob(c Class) float64 { return w.w.Prob(c) }

// Normalize scales the workload to total probability one.
func (w *Workload) Normalize() error { return w.w.Normalize() }

// Validate checks that the workload is a probability distribution.
func (w *Workload) Validate() error { return w.w.Validate() }

// Estimator accumulates an observed query stream into a workload estimate,
// the way the paper proposes obtaining stable workloads: class frequencies
// converge quickly because the number of classes is small. Safe for
// concurrent use.
type Estimator struct {
	schema *Schema
	e      *workload.Estimator
}

// NewEstimator returns an empty estimator for the schema.
func (s *Schema) NewEstimator() *Estimator {
	return &Estimator{schema: s, e: workload.NewEstimator(s.lat)}
}

// Observe records one query of the given class.
func (e *Estimator) Observe(c Class) error { return e.e.Observe(c) }

// Total returns the number of observations.
func (e *Estimator) Total() uint64 { return e.e.Total() }

// Workload returns the estimated distribution with additive smoothing (see
// internal/workload.Estimator).
func (e *Estimator) Workload(smoothing float64) (*Workload, error) {
	w, err := e.e.Workload(smoothing)
	if err != nil {
		return nil, err
	}
	return &Workload{schema: e.schema, w: w}, nil
}

// Strategy is a clustering strategy: a monotone lattice path, optionally
// snaked. The zero value is not useful; obtain strategies from Optimize,
// RowMajor or PathStrategy. A Strategy is immutable once built (WithSnaking
// returns a copy) and safe to share across goroutines, as is the Schema it
// came from.
type Strategy struct {
	schema *Schema
	Path   *core.Path
	Snaked bool
}

// Optimize returns the snaked optimal lattice path for the workload — the
// paper's headline strategy, within a factor of 2 of the global optimum
// (Theorems 2 and 3) and computed in time linear in the lattice size.
func Optimize(w *Workload) (*Strategy, error) {
	res, err := core.Optimal(w.w)
	if err != nil {
		return nil, err
	}
	return &Strategy{schema: w.schema, Path: res.Path, Snaked: true}, nil
}

// OptimizeUnsnaked returns the optimal lattice path without snaking, for
// comparisons.
func OptimizeUnsnaked(w *Workload) (*Strategy, error) {
	res, err := core.Optimal(w.w)
	if err != nil {
		return nil, err
	}
	return &Strategy{schema: w.schema, Path: res.Path, Snaked: false}, nil
}

// PathStrategy builds a strategy from an explicit step sequence: steps[i]
// names the dimension of the i-th loop, innermost first.
func (s *Schema) PathStrategy(steps []int, snaked bool) (*Strategy, error) {
	p, err := core.NewPath(s.lat, steps)
	if err != nil {
		return nil, err
	}
	return &Strategy{schema: s, Path: p, Snaked: snaked}, nil
}

// RowMajor builds the row-major strategy with the given outer-to-inner
// dimension nesting.
func (s *Schema) RowMajor(dims ...int) (*Strategy, error) {
	p, err := core.RowMajor(s.lat, dims)
	if err != nil {
		return nil, err
	}
	return &Strategy{schema: s, Path: p, Snaked: false}, nil
}

// WithSnaking returns the strategy with snaking switched on or off.
func (st *Strategy) WithSnaking(on bool) *Strategy {
	return &Strategy{schema: st.schema, Path: st.Path, Snaked: on}
}

// ExpectedCost returns the strategy's expected seek cost over the workload
// (average contiguous fragments per query, weighted by class probability),
// computed analytically from the characteristic vector.
func (st *Strategy) ExpectedCost(w *Workload) (float64, error) {
	if w.schema != st.schema {
		return 0, fmt.Errorf("snakes: workload and strategy use different schemas")
	}
	return cost.OfPath(st.Path, st.Snaked).ExpectedCost(w.w), nil
}

// ClassCost returns the strategy's average cost for one query class.
func (st *Strategy) ClassCost(c Class) float64 {
	return cost.OfPath(st.Path, st.Snaked).ClassCost(c)
}

// SnakingBenefit returns the factor by which snaking improves this path for
// class c; it is always in [1, 2) (Theorem 3).
func (st *Strategy) SnakingBenefit(c Class) float64 {
	return cost.Benefit(st.Path, c)
}

// String renders the strategy.
func (st *Strategy) String() string {
	if st.Snaked {
		return "snaked " + st.Path.String()
	}
	return st.Path.String()
}

// Order is a materialized linearization of the schema's cells.
type Order = linear.Order

// Materialize produces the strategy's concrete cell order.
func (st *Strategy) Materialize() (*Order, error) {
	return linear.FromPath(st.schema.schema, st.Path, st.Snaked)
}

// Hilbert returns the Hilbert-curve linearization of the schema (all sides
// must be equal powers of two), the classical baseline the paper compares
// against.
func (s *Schema) Hilbert() (*Order, error) { return linear.Hilbert(s.schema) }

// ZOrder returns the Z-curve (bit interleaving) linearization.
func (s *Schema) ZOrder() (*Order, error) { return linear.ZOrder(s.schema) }

// GrayOrder returns the Gray-code curve linearization.
func (s *Schema) GrayOrder() (*Order, error) { return linear.GrayOrder(s.schema) }

// EvaluateOrder returns the expected seek cost of an arbitrary
// linearization over the workload, measured from its edge structure.
func (s *Schema) EvaluateOrder(o *Order, w *Workload) float64 {
	return cost.EvaluateOrder(s.lat, o, w.w)
}

// Layout packs per-cell payloads along a strategy's order into fixed-size
// disk pages; see internal/storage for the measurement semantics.
type Layout = storage.Layout

// Pack materializes the strategy and packs bytesPerCell into pages of the
// given size (use snakes.DefaultPageSize for the paper's 8 KB).
func (st *Strategy) Pack(bytesPerCell []int64, pageSize int64) (*Layout, error) {
	o, err := st.Materialize()
	if err != nil {
		return nil, err
	}
	return storage.NewLayout(o, bytesPerCell, pageSize)
}

// Store is a queryable packed fact table: Put records into cells, then
// Scan or Sum over grid-query regions with the same page/seek accounting
// the analytic model predicts.
type Store = storage.Store

// NewStore materializes the strategy and allocates a paged store with the
// given per-cell byte capacities. Write records with Store.PutRecord (size
// each cell with snakes.FrameSize) and query with Store.Sum or Store.Scan.
func (st *Strategy) NewStore(bytesPerCell []int64, pageSize int64) (*Store, error) {
	o, err := st.Materialize()
	if err != nil {
		return nil, err
	}
	return storage.NewStore(o, bytesPerCell, pageSize)
}

// FrameSize returns the stored size of one record payload under the
// Store's length-prefixed framing.
func FrameSize(payloadLen int) int64 { return storage.FrameSize(payloadLen) }

// FileStore is the file-backed Store: records live in a fixed-page file
// accessed through an LRU buffer pool, so real page traffic can be compared
// against the analytic model. See also Migrate for physical re-clustering.
//
// Unlike the in-memory Store (a single-threaded simulator), a FileStore may
// be shared across goroutines: reads run concurrently, the pool coalesces
// concurrent misses on the same page into one disk read, and Close waits
// for in-flight readers before releasing the file. Context-accepting
// methods (ReadQueryCtx, SumCtx, VerifyCtx) stop between page reads when
// the context ends.
type FileStore = storage.FileStore

// ReadOptions tunes the parallel fragment read path
// (FileStore.ReadQueryOptCtx / SumOptCtx): Parallelism bounds the
// concurrent fragment fetches of one query (<= 1 selects the sequential
// path), Readahead the pages prefetched ahead of the decoder within a
// fragment.
type ReadOptions = storage.ReadOptions

// PoolStats counts a FileStore buffer pool's traffic since creation.
type PoolStats = storage.PoolStats

// PoolTally accumulates the pool traffic of one request, including an
// observed seek count; attach one to a query's context with WithPoolTally
// to get exact per-request cost attribution under concurrency.
type PoolTally = storage.PoolTally

// WithPoolTally routes the pool accounting of every context-accepting
// FileStore read issued under the returned context into t.
func WithPoolTally(ctx context.Context, t *PoolTally) context.Context {
	return storage.WithPoolTally(ctx, t)
}

// RetryPolicy configures how the buffer pool retries transient I/O errors;
// its backoff sleeps are context-aware.
type RetryPolicy = storage.RetryPolicy

// ErrTransient marks a retryable I/O failure; the pool retries these under
// its RetryPolicy before surfacing them.
var ErrTransient = storage.ErrTransient

// ErrClosed marks an operation issued against a FileStore after Close;
// match with errors.Is.
var ErrClosed = storage.ErrClosed

// ErrOverloaded marks a query shed by admission control; match with
// errors.Is and surface backpressure (e.g. HTTP 503) instead of retrying
// immediately.
var ErrOverloaded = storage.ErrOverloaded

// Admission bounds concurrent query weight against a store with a strict
// FIFO weighted semaphore; see NewAdmission.
type Admission = storage.Admission

// AdmissionStats is a snapshot of an Admission controller's state.
type AdmissionStats = storage.AdmissionStats

// NewAdmission creates an admission controller with the given total weight
// capacity and queue-wait timeout. Weight a grid query by its analytic page
// count (Layout.Query(region).Pages) so one huge scan and many point
// queries compete for the same budget.
func NewAdmission(capacity int64, queueTimeout time.Duration) (*Admission, error) {
	return storage.NewAdmission(capacity, queueTimeout)
}

// CreateFileStore materializes the strategy and creates a page file at
// path sized for the given per-cell byte capacities.
func (st *Strategy) CreateFileStore(path string, bytesPerCell []int64, pageSize, poolFrames int) (*FileStore, error) {
	o, err := st.Materialize()
	if err != nil {
		return nil, err
	}
	return storage.CreateFileStore(path, o, bytesPerCell, pageSize, poolFrames)
}

// OpenFileStore reopens a previously created file store under this
// strategy's order. Pass the loaded byte counts saved from
// FileStore.LoadedBytes.
func (st *Strategy) OpenFileStore(path string, bytesPerCell []int64, pageSize, poolFrames int, loadedBytes []int64) (*FileStore, error) {
	o, err := st.Materialize()
	if err != nil {
		return nil, err
	}
	return storage.OpenFileStore(path, o, bytesPerCell, pageSize, poolFrames, loadedBytes)
}

// Migrate physically re-clusters a file store onto this strategy's order,
// writing the new store at newPath and returning it ready to query.
func (st *Strategy) Migrate(old *FileStore, newPath string, poolFrames int) (*FileStore, error) {
	o, err := st.Materialize()
	if err != nil {
		return nil, err
	}
	return storage.Migrate(old, newPath, o, poolFrames)
}

// DefaultPageSize is the paper's 8 KB disk page.
const DefaultPageSize = storage.DefaultPageSize

// PageTrailerSize is the per-page overhead of the file store's CRC32C
// checksum trailer; each physical page holds PageSize−PageTrailerSize
// usable bytes, and the analytic accounting agrees.
const PageTrailerSize = storage.PageTrailerSize

// ErrCorruptPage marks a file-store page that failed checksum or format
// verification; match with errors.Is.
var ErrCorruptPage = storage.ErrCorruptPage

// CorruptPageError carries the physical page index of a verification
// failure; extract with errors.As.
type CorruptPageError = storage.CorruptPageError

// VerifyReport is the outcome of FileStore.Verify, the scrub pass that
// re-reads every page from disk and checks checksums and fill invariants.
type VerifyReport = storage.VerifyReport

// VerifyProblem is one defect in a VerifyReport, locating the damage by
// page, cell, and grid coordinates.
type VerifyProblem = storage.VerifyProblem

// ErrUnrepairable marks a corrupt page whose parity group has more damage
// than one XOR parity page can reconstruct; match with errors.Is.
var ErrUnrepairable = storage.ErrUnrepairable

// ErrNoParity marks a repair attempted on a store with no usable parity
// sidecar (never written, or stale after later writes).
var ErrNoParity = storage.ErrNoParity

// UnrepairableError carries the coordinates of unrepairable damage: the
// page asked about, its parity group, every bad page in the group, and the
// cell/grid coordinates of the page; extract with errors.As.
type UnrepairableError = storage.UnrepairableError

// RepairReport is the outcome of FileStore.RepairCtx, the sweep that
// repairs every corrupt page it can and reports the rest.
type RepairReport = storage.RepairReport

// DefaultParityGroup is the default number of data pages per XOR parity
// page — 1/8 space overhead for one-bad-page-per-group repair.
const DefaultParityGroup = storage.DefaultParityGroup

// ParityPath returns the parity sidecar path for a store file
// ("<store>.parity").
func ParityPath(storePath string) string { return storage.ParityPath(storePath) }

// Region is a grid query's footprint: one coordinate range per dimension.
type Region = linear.Region

// Range is one dimension's coordinate interval within a Region.
type Range = linear.Range

// QueryStats is the measured disk cost of one query.
type QueryStats = storage.Stats

// Distance returns the total-variation distance between two workloads over
// the same schema, in [0, 1]: the re-clustering drift signal.
func Distance(a, b *Workload) (float64, error) {
	if a.schema != b.schema {
		return 0, fmt.Errorf("snakes: comparing workloads over different schemas")
	}
	return workload.Distance(a.w, b.w)
}

// Drifted reports whether the estimator's current distribution has moved
// more than threshold (total-variation) from the baseline workload the
// current clustering was chosen for.
func (e *Estimator) Drifted(baseline *Workload, smoothing, threshold float64) (bool, float64, error) {
	return e.e.Drifted(baseline.w, smoothing, threshold)
}
