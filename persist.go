package snakes

import (
	"encoding/json"
	"fmt"
)

// The persistence format: a small JSON envelope so a chosen clustering
// survives process restarts the way a real warehouse's catalog would. The
// format is versioned; unknown versions are rejected rather than guessed
// at.

const persistVersion = 1

type schemaJSON struct {
	Version int         `json:"version"`
	Dims    []Dimension `json:"dims"`
}

// MarshalSchema serializes a schema's dimensional structure. Label indexes
// from SchemaFromTrees are not serialized; persist the trees themselves if
// label resolution must survive.
func MarshalSchema(s *Schema) ([]byte, error) {
	return json.Marshal(schemaJSON{Version: persistVersion, Dims: s.schema.Dims})
}

// UnmarshalSchema reconstructs a schema.
func UnmarshalSchema(data []byte) (*Schema, error) {
	var sj schemaJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, fmt.Errorf("snakes: decoding schema: %w", err)
	}
	if sj.Version != persistVersion {
		return nil, fmt.Errorf("snakes: unsupported schema version %d", sj.Version)
	}
	return BuildSchema(sj.Dims...)
}

type workloadJSON struct {
	Version int         `json:"version"`
	Dims    []Dimension `json:"dims"` // embedded for validation on load
	Probs   []float64   `json:"probs"`
}

// MarshalWorkload serializes a workload along with its schema's shape, so
// loading validates the distribution still matches the lattice.
func MarshalWorkload(w *Workload) ([]byte, error) {
	probs := make([]float64, w.schema.lat.Size())
	for i := range probs {
		probs[i] = w.w.ProbAt(i)
	}
	return json.Marshal(workloadJSON{
		Version: persistVersion,
		Dims:    w.schema.schema.Dims,
		Probs:   probs,
	})
}

// UnmarshalWorkload reconstructs a workload onto an existing schema. The
// stored shape must match the schema's.
func UnmarshalWorkload(s *Schema, data []byte) (*Workload, error) {
	var wj workloadJSON
	if err := json.Unmarshal(data, &wj); err != nil {
		return nil, fmt.Errorf("snakes: decoding workload: %w", err)
	}
	if wj.Version != persistVersion {
		return nil, fmt.Errorf("snakes: unsupported workload version %d", wj.Version)
	}
	if err := sameShape(s, wj.Dims); err != nil {
		return nil, err
	}
	if len(wj.Probs) != s.lat.Size() {
		return nil, fmt.Errorf("snakes: workload has %d probabilities for a %d-class lattice",
			len(wj.Probs), s.lat.Size())
	}
	w := s.NewWorkload()
	for i, p := range wj.Probs {
		w.w.Set(s.lat.PointAt(i), p)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

type strategyJSON struct {
	Version int         `json:"version"`
	Dims    []Dimension `json:"dims"`
	Steps   []int       `json:"steps"`
	Snaked  bool        `json:"snaked"`
}

// MarshalStrategy serializes a strategy (its lattice path and snaking flag)
// along with its schema's shape.
func MarshalStrategy(st *Strategy) ([]byte, error) {
	return json.Marshal(strategyJSON{
		Version: persistVersion,
		Dims:    st.schema.schema.Dims,
		Steps:   st.Path.Steps(),
		Snaked:  st.Snaked,
	})
}

// UnmarshalStrategy reconstructs a strategy onto an existing schema,
// validating both the schema shape and the path.
func UnmarshalStrategy(s *Schema, data []byte) (*Strategy, error) {
	var sj strategyJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, fmt.Errorf("snakes: decoding strategy: %w", err)
	}
	if sj.Version != persistVersion {
		return nil, fmt.Errorf("snakes: unsupported strategy version %d", sj.Version)
	}
	if err := sameShape(s, sj.Dims); err != nil {
		return nil, err
	}
	return s.PathStrategy(sj.Steps, sj.Snaked)
}

// sameShape checks that the stored dimensions structurally match the
// schema the artifact is being loaded onto.
func sameShape(s *Schema, dims []Dimension) error {
	cur := s.schema.Dims
	if len(dims) != len(cur) {
		return fmt.Errorf("snakes: stored artifact has %d dimensions, schema has %d", len(dims), len(cur))
	}
	for i := range dims {
		if dims[i].Name != cur[i].Name {
			return fmt.Errorf("snakes: stored dimension %d is %q, schema has %q", i, dims[i].Name, cur[i].Name)
		}
		if len(dims[i].Fanouts) != len(cur[i].Fanouts) {
			return fmt.Errorf("snakes: stored dimension %q has %d levels, schema has %d",
				dims[i].Name, len(dims[i].Fanouts), len(cur[i].Fanouts))
		}
		for j := range dims[i].Fanouts {
			if dims[i].Fanouts[j] != cur[i].Fanouts[j] {
				return fmt.Errorf("snakes: stored dimension %q fanout mismatch at level %d", dims[i].Name, j+1)
			}
		}
	}
	return nil
}
