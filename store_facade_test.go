package snakes

import (
	"encoding/binary"
	"math"
	"testing"
)

func TestEstimatorFacade(t *testing.T) {
	s := exampleSchema()
	e := s.NewEstimator()
	for i := 0; i < 9; i++ {
		if err := e.Observe(Class{0, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Observe(Class{2, 2}); err != nil {
		t.Fatal(err)
	}
	if e.Total() != 10 {
		t.Errorf("Total = %d", e.Total())
	}
	w, err := e.Workload(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Prob(Class{0, 2}); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Prob = %v, want 0.9", got)
	}
	// The learned workload drives optimization directly.
	st, err := Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Path.Contains(Class{0, 2}) {
		t.Errorf("optimal path %v should pass through the dominant class", st.Path)
	}
}

func TestStoreFacadeEndToEnd(t *testing.T) {
	s := exampleSchema()
	w := s.ClassWorkload(Class{0, 2})
	st, err := Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	// One 8-byte measure per cell.
	bytes := make([]int64, s.NumCells())
	for i := range bytes {
		bytes[i] = FrameSize(8)
	}
	store, err := st.NewStore(bytes, 64)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for c := 0; c < s.NumCells(); c++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(c)))
		if err := store.PutRecord(c, buf); err != nil {
			t.Fatal(err)
		}
	}
	total, io, err := store.Sum(Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}, func(rec []byte) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(rec))
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(15 * 16 / 2); total != want {
		t.Errorf("Sum = %v, want %v", total, want)
	}
	if io.Seeks != 1 {
		t.Errorf("full scan took %d seeks, want 1", io.Seeks)
	}
}
