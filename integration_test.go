package snakes_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runGo runs `go run <pkg> <args...>` in the module root and returns its
// combined output.
func runGo(t *testing.T, pkg string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", pkg}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s %v failed: %v\n%s", pkg, args, err, out)
	}
	return string(out)
}

// TestExamplesRun executes every example binary end to end and checks a
// marker line from each, so examples cannot silently rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cases := []struct {
		pkg    string
		marker string
	}{
		{"./examples/quickstart", "optimal strategy: snaked"},
		{"./examples/retail", "the optimum"},
		{"./examples/telecom", "optimized the unbalanced-region schema successfully"},
		{"./examples/tpcd", "executed in"},
		{"./examples/adaptive", "after reorg: the same scans cost"},
		{"./examples/olap", "persisted strategy"},
	}
	for _, c := range cases {
		c := c
		t.Run(filepath.Base(c.pkg), func(t *testing.T) {
			t.Parallel()
			out := runGo(t, c.pkg)
			if !strings.Contains(out, c.marker) {
				t.Errorf("%s output missing %q:\n%s", c.pkg, c.marker, out)
			}
		})
	}
}

// TestToolsRun smoke-tests the command-line tools on tiny inputs.
func TestToolsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	t.Run("snakebench", func(t *testing.T) {
		t.Parallel()
		out := runGo(t, "./cmd/snakebench", "-tables", "1,2", "-figures=false")
		for _, want := range []string{"Table 1", "16/16", "Table 2"} {
			if !strings.Contains(out, want) {
				t.Errorf("snakebench output missing %q", want)
			}
		}
	})
	t.Run("snakebench-validate", func(t *testing.T) {
		t.Parallel()
		out := runGo(t, "./cmd/snakebench", "-validate", "-tables", "", "-figures=false")
		if !strings.Contains(out, "worst analytic-vs-measured deviation: 0") {
			t.Errorf("validation output:\n%s", out)
		}
	})
	t.Run("latticeopt", func(t *testing.T) {
		t.Parallel()
		out := runGo(t, "./cmd/latticeopt",
			"-dims", "a:4,2 b:3", "-workload", "0,1:0.7 2,0:0.3")
		if !strings.Contains(out, "optimal lattice path") || !strings.Contains(out, "snaked") {
			t.Errorf("latticeopt output:\n%s", out)
		}
	})
	t.Run("tpcdgen", func(t *testing.T) {
		t.Parallel()
		out := runGo(t, "./cmd/tpcdgen",
			"-parts", "2", "-days", "2", "-years", "1", "-records", "2")
		for _, want := range []string{"schema:", "Q9", "first 2 records"} {
			if !strings.Contains(out, want) {
				t.Errorf("tpcdgen output missing %q", want)
			}
		}
	})
}
