package snakes

// One benchmark per paper table and figure (see DESIGN.md §4), plus
// ablation benches for the design choices the paper motivates: DP vs
// exhaustive enumeration, snaking on/off, and curve materialization cost.
// Run with: go test -bench=. -benchmem

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cv"
	"repro/internal/experiments"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/workload"
)

// benchWarehouse is the reduced warehouse used by the Table 4–6 benches:
// same hierarchy shapes as the paper, scaled to run in milliseconds.
func benchWarehouse(b *testing.B) *tpcd.Dataset {
	b.Helper()
	cfg := tpcd.DefaultConfig()
	cfg.PartsPerMfr = 8
	cfg.DaysPerMonth = 6
	cfg.Years = 4
	ds, err := tpcd.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	// Includes materializing the 1024×1024 Hilbert curve at fanout 32.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(experiments.Table3Fanouts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3Lattice(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if experiments.Figure3() == "" {
			b.Fatal("empty lattice rendering")
		}
	}
}

func BenchmarkFigureGrids(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigureGrids(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	ds := benchWarehouse(b)
	mixes := []tpcd.Mix{
		{Parts: tpcd.Even, Supplier: tpcd.Even, Time: tpcd.Even},
		tpcd.PaperWorkload7(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := experiments.NewMeasurer(ds) // fresh cache: measure, don't memoize
		m.SamplesPerClass = 16
		if _, err := experiments.Table4(m, mixes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5And6(b *testing.B) {
	cfg := tpcd.DefaultConfig()
	cfg.DaysPerMonth = 6
	cfg.Years = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(cfg, []int{4, 10}, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalLatticePath measures the headline algorithm: the DP over
// a 21×21-class lattice (two 20-level hierarchies).
func BenchmarkOptimalLatticePath(b *testing.B) {
	l := lattice.New(hierarchy.MustSchema(
		hierarchy.Binary("A", 20), hierarchy.Binary("B", 20)))
	w := workload.Uniform(l)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimal2D(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalKD measures the k-dimensional generalization on the
// TPC-D-shaped lattice.
func BenchmarkOptimalKD(b *testing.B) {
	s, err := tpcd.DefaultConfig().Schema()
	if err != nil {
		b.Fatal(err)
	}
	w := workload.Uniform(lattice.New(s))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimal(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDPvsEnumeration quantifies what the DP buys over
// exhaustive search on a lattice where enumeration is still feasible
// (C(12,6) = 924 paths).
func BenchmarkAblationDPvsEnumeration(b *testing.B) {
	l := lattice.New(hierarchy.MustSchema(
		hierarchy.Binary("A", 6), hierarchy.Binary("B", 6)))
	rng := rand.New(rand.NewSource(1))
	w := workload.Random(l, rng, 0.5)
	b.Run("dp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimal2D(w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enumeration", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = core.BestByEnumeration(w)
		}
	})
}

// BenchmarkSnakingBenefit (experiment X1): the Theorem-3 ratio across
// random workloads on the 2-D binary schema.
func BenchmarkSnakingBenefit(b *testing.B) {
	l := lattice.New(cv.BinarySchema(6))
	rng := rand.New(rand.NewSource(9))
	p := core.MustPath(l, []int{1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0})
	plain := cost.OfPath(p, false)
	snaked := cost.OfPath(p, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := workload.Random(l, rng, 0.5)
		ratio := plain.ExpectedCost(w) / snaked.ExpectedCost(w)
		if ratio >= 2 {
			b.Fatalf("Theorem 3 violated: ratio %v", ratio)
		}
	}
}

// BenchmarkGlobalOptimality (experiment X2): the Theorem-2 check that the
// best snaked lattice path beats the Hilbert curve, per random workload.
func BenchmarkGlobalOptimality(b *testing.B) {
	s := cv.BinarySchema(4)
	l := lattice.New(s)
	h, err := linear.Hilbert(s)
	if err != nil {
		b.Fatal(err)
	}
	hcv := cost.OfOrder(l, h)
	var paths []*cost.CV
	core.EnumeratePaths(l, func(p *core.Path) bool {
		paths = append(paths, cost.OfPath(p, true))
		return true
	})
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := workload.Random(l, rng, 0.5)
		best := paths[0].ExpectedCost(w)
		for _, p := range paths[1:] {
			if c := p.ExpectedCost(w); c < best {
				best = c
			}
		}
		if hc := hcv.ExpectedCost(w); hc < best-1e-9 {
			b.Fatalf("Hilbert beats all snaked lattice paths: %v < %v", hc, best)
		}
	}
}

// BenchmarkAblationSnaking compares materializing a path with and without
// snaking on a 512×512 grid.
func BenchmarkAblationSnaking(b *testing.B) {
	s := hierarchy.MustSchema(hierarchy.Binary("A", 9), hierarchy.Binary("B", 9))
	p := linear.AlternatingPath(s)
	for _, cfg := range []struct {
		name   string
		snaked bool
	}{{"plain", false}, {"snaked", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := linear.FromPath(s, p, cfg.snaked); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCurves compares materialization cost of the classical curves on
// a 512×512 grid.
func BenchmarkCurves(b *testing.B) {
	s := hierarchy.MustSchema(hierarchy.Binary("A", 9), hierarchy.Binary("B", 9))
	builders := []struct {
		name  string
		build func() (*linear.Order, error)
	}{
		{"hilbert", func() (*linear.Order, error) { return linear.Hilbert(s) }},
		{"z", func() (*linear.Order, error) { return linear.ZOrder(s) }},
		{"gray", func() (*linear.Order, error) { return linear.GrayOrder(s) }},
	}
	for _, c := range builders {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.build(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPackAndQuery measures the storage substrate: packing the reduced
// warehouse and answering one mid-size query.
func BenchmarkPackAndQuery(b *testing.B) {
	ds := benchWarehouse(b)
	o, err := linear.RowMajor(ds.Schema, []int{0, 1, 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := storage.NewLayout(o, ds.BytesPerCell, ds.Config.PageBytes); err != nil {
				b.Fatal(err)
			}
		}
	})
	layout, err := storage.NewLayout(o, ds.BytesPerCell, ds.Config.PageBytes)
	if err != nil {
		b.Fatal(err)
	}
	region := linear.ClassRegion(o, lattice.Point{1, 0, 2}, []int{2, 3, 1})
	b.Run("query", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = layout.Query(region)
		}
	})
}

// BenchmarkSandwichClosure measures the Theorem-2 construction on the
// Example-3 vector.
func BenchmarkSandwichClosure(b *testing.B) {
	u, err := cv.FromSlices([]int64{27, 8, 3}, []int64{21, 3, 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cv.SandwichClosure(u, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationChunkOrdering compares the Deshpande-style chunked file
// organization's row-major chunk ordering against the Section-7 improvement
// — ordering chunks by the workload's optimal snaked lattice path — on
// chunk-aligned grid queries drawn from a column-heavy workload over a
// 64×64 grid with 8×8 chunks.
func BenchmarkAblationChunkOrdering(b *testing.B) {
	s := hierarchy.MustSchema(
		hierarchy.Dimension{Name: "x", Fanouts: []int{8, 2, 2, 2}},
		hierarchy.Dimension{Name: "y", Fanouts: []int{8, 2, 2, 2}},
	)
	chunkSchema := hierarchy.MustSchema(
		hierarchy.Dimension{Name: "x", Fanouts: []int{2, 2, 2}},
		hierarchy.Dimension{Name: "y", Fanouts: []int{2, 2, 2}},
	)
	chunkLat := lattice.New(chunkSchema)
	w := workload.UniformOver(chunkLat,
		lattice.Point{3, 0}, lattice.Point{2, 0}, lattice.Point{3, 1})
	opt, err := core.Optimal(w)
	if err != nil {
		b.Fatal(err)
	}
	inner := linear.RowMajorBuilder([]int{0, 1})
	builders := []struct {
		name  string
		outer func(*hierarchy.Schema) (*linear.Order, error)
	}{
		{"row-major-chunks", linear.RowMajorBuilder([]int{0, 1})},
		{"optimized-snaked-chunks", func(cs *hierarchy.Schema) (*linear.Order, error) {
			return linear.FromPath(cs, opt.Path, true)
		}},
	}
	for _, cfg := range builders {
		b.Run(cfg.name, func(b *testing.B) {
			o, err := linear.Chunked(s, []int{1, 1}, cfg.outer, inner)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(6))
			classes := w.Support()
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := classes[rng.Intn(len(classes))]
				r := make(linear.Region, 2)
				for d := 0; d < 2; d++ {
					node := rng.Intn(chunkSchema.Dims[d].NodesAt(c[d]))
					lo, hi := chunkSchema.Dims[d].LeafRange(node, c[d])
					r[d] = linear.Range{Lo: lo * 8, Hi: hi * 8}
				}
				total += o.Fragments(r)
			}
			b.ReportMetric(float64(total)/float64(b.N), "fragments/op")
		})
	}
}

// BenchmarkTPCDGeneration measures dataset generation at the paper's full
// dimensions (5.04M cells).
func BenchmarkTPCDGeneration(b *testing.B) {
	cfg := tpcd.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tpcd.Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreSum measures an aggregate query against the in-memory
// store on a 64×64 grid, one record per cell.
func BenchmarkStoreSum(b *testing.B) {
	s := hierarchy.MustSchema(hierarchy.Binary("A", 6), hierarchy.Binary("B", 6))
	o, err := linear.GrayOrder(s)
	if err != nil {
		b.Fatal(err)
	}
	bytes := make([]int64, o.Len())
	for i := range bytes {
		bytes[i] = storage.FrameSize(8)
	}
	st, err := storage.NewStore(o, bytes, 256)
	if err != nil {
		b.Fatal(err)
	}
	rec := make([]byte, 8)
	for c := 0; c < o.Len(); c++ {
		if err := st.PutRecord(c, rec); err != nil {
			b.Fatal(err)
		}
	}
	region := linear.Region{{Lo: 8, Hi: 24}, {Lo: 16, Hi: 48}}
	decode := func([]byte) float64 { return 1 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Sum(region, decode); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimator measures the observe path of the workload estimator.
func BenchmarkEstimator(b *testing.B) {
	l := lattice.New(hierarchy.MustSchema(
		hierarchy.Uniform("a", 2, 2), hierarchy.Uniform("b", 3, 2), hierarchy.Uniform("c", 1, 2)))
	e := workload.NewEstimator(l)
	classes := make([]lattice.Point, 0, l.Size())
	l.Points(func(p lattice.Point) { classes = append(classes, p.Clone()) })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Observe(classes[i%len(classes)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRobustness measures the workload-sensitivity analysis on the
// TPC-D lattice.
func BenchmarkRobustness(b *testing.B) {
	s, err := tpcd.DefaultConfig().Schema()
	if err != nil {
		b.Fatal(err)
	}
	w := workload.Uniform(lattice.New(s))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Robustness(w, 0.1, 20, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
