// Package snakes implements optimal clustering strategies for data
// warehouse fact tables, reproducing Jagadish, Lakshmanan and Srivastava,
// "Snakes and Sandwiches: Optimal Clustering Strategies for a Data
// Warehouse" (SIGMOD 1999).
//
// A star schema's fact table is viewed as a k-dimensional grid of cells,
// one cell per combination of dimension leaf values. Grid queries select
// one hierarchy node per dimension; a query's class is the vector of the
// levels of those nodes, and a workload is a probability distribution over
// query classes. The library finds the monotone lattice path of minimum
// expected seek cost for a workload via dynamic programming (linear in the
// lattice size), applies snaking — which never increases cost and removes
// all diagonal disk jumps — and materializes the result as a concrete
// linearization of the fact table's cells, with a page-level disk simulator
// to measure real layouts.
//
// # Quick start
//
//	schema := snakes.NewSchema(
//		snakes.Dim("product", 40, 5), // part → manufacturer → all
//		snakes.Dim("time", 30, 12),   // day → month → all
//	)
//	w := schema.UniformWorkload()
//	strategy, err := snakes.Optimize(w)
//	// strategy.Path is the optimal lattice path; strategy.Snaked is true.
//	order, err := strategy.Materialize()
//	// order lists every cell in disk order.
//
// The internal packages carry the full machinery: internal/core (paths and
// the DP), internal/cost and internal/cv (the characteristic-vector theory,
// Lemma 2–4 and the Theorem-2 sandwich construction), internal/linear
// (linearizations: snaked paths, row-major, Hilbert, Z, Gray), and
// internal/storage + internal/tpcd + internal/experiments (the Section-6
// evaluation).
package snakes
