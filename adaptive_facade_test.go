package snakes_test

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	snakes "repro"
)

// adaptiveSchema is the 4x4 warehouse the adaptive tests share: class
// {0,2} is a single x-row, class {2,0} a single y-column, and their
// optimal linearizations are opposite nestings.
func adaptiveSchema() *snakes.Schema {
	return snakes.NewSchema(snakes.Dim("x", 2, 2), snakes.Dim("y", 2, 2))
}

func TestClassOfRegion(t *testing.T) {
	s := adaptiveSchema()
	cases := []struct {
		r    snakes.Region
		want snakes.Class
	}{
		{snakes.Region{{Lo: 1, Hi: 2}, {Lo: 0, Hi: 4}}, snakes.Class{0, 2}},
		{snakes.Region{{Lo: 0, Hi: 4}, {Lo: 3, Hi: 4}}, snakes.Class{2, 0}},
		{snakes.Region{{Lo: 2, Hi: 4}, {Lo: 0, Hi: 2}}, snakes.Class{1, 1}},
		{snakes.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}, snakes.Class{2, 2}},
		{snakes.Region{{Lo: 3, Hi: 4}, {Lo: 2, Hi: 3}}, snakes.Class{0, 0}},
		// Unaligned range [1,3) straddles the level-1 blocks: attributed
		// to the smallest enclosing node, the whole dimension.
		{snakes.Region{{Lo: 1, Hi: 3}, {Lo: 0, Hi: 1}}, snakes.Class{2, 0}},
	}
	for _, c := range cases {
		got, err := s.ClassOfRegion(c.r)
		if err != nil {
			t.Fatalf("ClassOfRegion(%v): %v", c.r, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("ClassOfRegion(%v) = %v, want %v", c.r, got, c.want)
		}
	}
	for _, bad := range []snakes.Region{
		{{Lo: 0, Hi: 4}},                  // wrong dimension count
		{{Lo: 0, Hi: 5}, {Lo: 0, Hi: 4}},  // out of range
		{{Lo: 2, Hi: 2}, {Lo: 0, Hi: 4}},  // empty
		{{Lo: -1, Hi: 2}, {Lo: 0, Hi: 4}}, // negative
	} {
		if _, err := s.ClassOfRegion(bad); err == nil {
			t.Errorf("ClassOfRegion(%v) should fail", bad)
		}
	}
}

func TestDecayingEstimatorFacade(t *testing.T) {
	s := adaptiveSchema()
	e, err := s.NewDecayingEstimator(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := e.Observe(snakes.Class{0, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Decay(0.5); err != nil {
		t.Fatal(err)
	}
	if got := e.Weight(); math.Abs(got-4) > 1e-12 {
		t.Errorf("Weight = %v, want 4", got)
	}
	if e.Total() != 8 {
		t.Errorf("Total = %d, want 8", e.Total())
	}
	w, err := e.Workload(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Prob(snakes.Class{0, 2}); math.Abs(got-1) > 1e-12 {
		t.Errorf("P({0,2}) = %v, want 1", got)
	}
	drifted, _, err := e.Drifted(w, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if drifted {
		t.Error("estimate drifted from itself")
	}
}

// TestReorganizerEndToEnd drives the whole facade loop against a real file
// store: serve row queries, shift to column queries, let the reorganizer
// migrate onto the column-optimal order, and check the physical seeks drop
// to the analytic optimum.
func TestReorganizerEndToEnd(t *testing.T) {
	s := adaptiveSchema()
	wA := s.ClassWorkload(snakes.Class{0, 2})
	stA, err := snakes.Optimize(wA)
	if err != nil {
		t.Fatal(err)
	}

	bytes := make([]int64, s.NumCells())
	for i := range bytes {
		bytes[i] = snakes.FrameSize(8)
	}
	dir := t.TempDir()
	fs, err := stA.CreateFileStore(filepath.Join(dir, "g0.db"), bytes, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for c := 0; c < s.NumCells(); c++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(c)))
		if err := fs.PutRecord(c, buf); err != nil {
			t.Fatal(err)
		}
	}

	// The migrator mirrors the daemon's mechanism in miniature: migrate,
	// swap the local store variable, close the old generation.
	var r *snakes.Reorganizer
	migrate := func(ctx context.Context, d *snakes.ReorgDecision) error {
		newPath := filepath.Join(dir, "g1.db")
		dst, err := d.Strategy.MigrateCtx(ctx, fs, newPath, 8, d.Progress)
		if err != nil {
			return err
		}
		old := fs
		fs = dst
		return old.Close()
	}
	cfg := snakes.ReorgConfig{
		CheckInterval:   time.Millisecond,
		Smoothing:       0.01,
		MinWeight:       1,
		RegretThreshold: 1.05,
		Hysteresis:      2,
	}
	r, err = snakes.NewReorganizer(stA, 0, migrate, cfg)
	if err != nil {
		t.Fatal(err)
	}

	colRegion := snakes.Region{{Lo: 0, Hi: 4}, {Lo: 1, Hi: 2}}
	for i := 0; i < 200; i++ {
		if err := r.ObserveRegion(colRegion); err != nil {
			t.Fatal(err)
		}
	}
	var d *snakes.ReorgDecision
	for i := 0; i < 3; i++ {
		if d, err = r.Trigger(context.Background(), false); err == nil {
			break
		}
		if !snakes.ReorgSkipped(err) {
			t.Fatal(err)
		}
	}
	if err != nil {
		t.Fatalf("reorganizer never fired: %v", err)
	}
	if d.Generation != 1 || r.Generation() != 1 {
		t.Fatalf("generation after reorg: decision %d, reorganizer %d", d.Generation, r.Generation())
	}
	if d.Regret <= 1.05 {
		t.Errorf("acted at regret %v, below threshold", d.Regret)
	}

	// Reopen the new generation cold (migration wrote through its pool),
	// then check the physical seeks of a column query match the new
	// strategy's analytic prediction, beating the old strategy's.
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs, err = d.Strategy.OpenFileStore(filepath.Join(dir, "g1.db"), bytes, 32, 8, loaded)
	if err != nil {
		t.Fatal(err)
	}
	pred := fs.Layout().Query(colRegion)
	var tally snakes.PoolTally
	ctx := snakes.WithPoolTally(context.Background(), &tally)
	sum := 0.0
	err = fs.ReadQueryCtx(ctx, colRegion, func(cell int, rec []byte) error {
		sum += math.Float64frombits(binary.LittleEndian.Uint64(rec[:8]))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tally.Seeks(); got != pred.Seeks {
		t.Errorf("observed seeks = %d, predicted %d", got, pred.Seeks)
	}
	oldLayout, err := stA.Pack(bytes, 32)
	if err != nil {
		t.Fatal(err)
	}
	oldPred := oldLayout.Query(colRegion)
	if pred.Seeks >= oldPred.Seeks {
		t.Errorf("new layout seeks %d not better than old %d", pred.Seeks, oldPred.Seeks)
	}

	// The store still holds every record.
	all := snakes.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}
	total, _, err := fs.Sum(all, func(rec []byte) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(rec[:8]))
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 120.0; total != want {
		t.Errorf("post-migration sum = %v, want %v", total, want)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReorganizerFailedMigrationKeepsOldStrategy(t *testing.T) {
	s := adaptiveSchema()
	wA := s.ClassWorkload(snakes.Class{0, 2})
	stA, err := snakes.Optimize(wA)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	cfg := snakes.ReorgConfig{
		CheckInterval:   time.Millisecond,
		Smoothing:       0.01,
		MinWeight:       1,
		RegretThreshold: 1.05,
		Hysteresis:      1,
	}
	r, err := snakes.NewReorganizer(stA, 0, func(context.Context, *snakes.ReorgDecision) error { return boom }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := r.Observe(snakes.Class{2, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Trigger(context.Background(), false); !errors.Is(err, boom) {
		t.Fatalf("trigger error = %v, want the migrator's", err)
	}
	st := r.Status()
	if st.Generation != 0 || st.Failures != 1 || st.LastOutcome != "failed" {
		t.Errorf("failure status = %+v", st)
	}
	if !r.Strategy().Path.Equal(stA.Path) {
		t.Error("failed migration changed the deployed strategy")
	}
}
