GO ?= go
BENCH_NAME ?= local

.PHONY: check fmt vet build test race fuzz stress staticcheck metrics-lint trace-smoke obs-smoke bench bench-adaptive bench-chaos bench-sustained bench-ingest bench-obs bench-smoke bench-lint reorg-smoke ingest-smoke chaos chaos-long

# check is the tier-1 verification gate (see ROADMAP.md): formatting,
# static analysis, a full build, the metrics-name lint, the tracing
# smoke, the deterministic chaos suite, the bench-artifact lint plus the
# sustained-bench smoke, and the test suite under the race detector.
# Fuzz seed corpora run as ordinary tests. staticcheck runs when the
# binary is installed and is skipped (with a notice) otherwise, so check
# works on machines without network access.
check: fmt vet staticcheck build metrics-lint trace-smoke obs-smoke ingest-smoke chaos bench-lint bench-smoke race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short bounded fuzz session over the catalog round-trip property.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzCatalogRoundTrip -fuzztime=10s ./cmd/snakestore

# stress re-runs the concurrency suite under the race detector several
# times: the serving stress test (goroutines + faults + cancellation +
# graceful shutdown), the pool coalescing tests, cancellable migration,
# the serve daemon's drain test, and the adaptive-reorg swap tests.
# -count=3 defeats test caching and varies goroutine schedules.
stress:
	$(GO) test -race -count=3 -run 'TestConcurrent|TestBufferPool|TestClose|TestMigrate|TestAdmission|TestServe|TestReorganizer|TestController' ./internal/storage ./internal/adaptive ./cmd/snakestore .

# metrics-lint checks the daemon's metric names against the obs
# conventions (unique series, snake_case, snakestore_ prefix, counters
# end in _total) by scraping the real serving registry, and that the
# trace-derived families are declared with their documented types.
metrics-lint:
	$(GO) test -run 'TestMetricsLint|TestMetricsTraceFamilies|TestRegistryNameValidation' ./cmd/snakestore ./internal/obs

# trace-smoke drives the slow-query forensics path end to end under the
# race detector: a fault-injected store plus retry backoff manufacture a
# genuinely slow query, which must be retained in /debug/traces with its
# span tree, echoed as traceId, logged as slow-query, and counted in the
# trace metrics — plus the always-retain-slow and panic-recovery gates.
trace-smoke:
	$(GO) test -race -count=1 -run 'TestServeTraceSmoke|TestServeSlowAlwaysRetained|TestServePanicRecovery|TestColdQueryFragmentSpansMatchTallyAndAnalytic|TestUntracedReadPathZeroAlloc' ./cmd/snakestore ./internal/storage

# obs-smoke drives the wide-event / calibration / SLO stack end to end
# under the race detector: the /debug/events ring with field filters and
# exact cold calibration ratios, deterministic burn-rate transitions on
# an injected clock, ingest/repair event and trace coverage, and drift
# flagged under an overlay then cleared by compaction.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestServeWideEventsAndCalibration|TestServeSLOBurnRateTransitions|TestServeIngestRepairObservability|TestServeCalibrationDriftAndCompaction' ./cmd/snakestore

# bench runs the end-to-end store benchmark on the reduced warehouse and
# writes a machine-readable report; override BENCH_NAME to label runs
# (e.g. `make bench BENCH_NAME=pr12` -> BENCH_pr12.json).
bench:
	$(GO) run ./cmd/snakebench -figures=false -tables "" \
		-name $(BENCH_NAME) -json BENCH_$(BENCH_NAME).json

# bench-adaptive runs the workload-drift scenario end to end (serve under
# workload A, drift to B, adaptive reorganization) and writes the
# before/drift/after seek measurements as BENCH_adaptive.json.
bench-adaptive:
	$(GO) run ./cmd/snakebench -figures=false -tables "" \
		-name $(BENCH_NAME) -adaptive-json BENCH_adaptive.json

# bench-chaos measures the self-healing layer (repair throughput, paced
# scrub overhead on query p99, time-to-healthy after a corruption burst)
# and writes BENCH_chaos.json.
bench-chaos:
	$(GO) run ./cmd/snakebench -figures=false -tables "" \
		-name $(BENCH_NAME) -chaos-json BENCH_chaos.json

# bench-sustained runs the sustained-load benchmark of the parallel
# fragment read path — cold sequential vs parallel QPS, Parallelism=1
# bit-identity, exact analytic-model reconciliation, and a 30-second
# open-loop phase with SLO percentiles — and writes BENCH_sustained.json.
bench-sustained:
	$(GO) run ./cmd/snakebench -figures=false -tables "" \
		-name $(BENCH_NAME) -sustained-json BENCH_sustained.json

# bench-ingest runs the write-path benchmark — delta-store ingest under
# mixed load (>= 10% writes), merge-on-read, paced compaction that drains
# without ever rewriting the whole file in one tick, exact cold
# reconciliation, and incremental re-clustering onto the DP-optimal order
# — and writes BENCH_ingest.json.
bench-ingest:
	$(GO) run ./cmd/snakebench -figures=false -tables "" \
		-name $(BENCH_NAME) -ingest-json BENCH_ingest.json

# bench-obs runs the observability benchmark — exact per-class cost-model
# calibration on a cold store, drift detection under a full delta
# overlay, recovery through paced compaction, and deterministic SLO
# burn-rate transitions on an injected clock — and writes BENCH_obs.json.
bench-obs:
	$(GO) run ./cmd/snakebench -figures=false -tables "" \
		-name $(BENCH_NAME) -obs-json BENCH_obs.json

# bench-smoke drives every phase of the sustained benchmark on a tiny
# warehouse: the deterministic gates (bit-identity, predicted == observed
# pages/seeks) are hard errors, so a broken parallel read path fails here
# in seconds instead of in a 30-second bench run.
bench-smoke:
	$(GO) test -count=1 -run 'TestSustainedBenchSmoke|TestIngestBenchSmoke|TestObsBenchSmoke' ./cmd/snakebench

# bench-lint parses every committed BENCH_*.json under its registered
# schema (unknown fields, trailing bytes, and unknown suffixes all fail)
# and checks each artifact's own sanity gate — e.g. BENCH_sustained.json
# must show the >= 3x cold speedup it was committed to demonstrate.
bench-lint:
	$(GO) test -count=1 -run 'TestBenchArtifacts|TestReportWriter' ./cmd/snakebench

# chaos runs the deterministic self-healing suite under the race
# detector: seeded fault schedules against parity repair, the live serve
# loop with the paced scrubber, repair-under-migration, and the storm /
# crash-point storage tests. Every schedule is a pure function of its
# seed, so a failure replays exactly.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestParity|TestRepair|TestMigrate|TestStorm|TestCrashPoint|TestPlan|TestSchedule' ./internal/chaos ./internal/storage ./cmd/snakestore

# chaos-long is the randomized long-haul variant: fresh seeds each run,
# logged (go test -v) so any failure can be replayed deterministically.
chaos-long:
	CHAOS_LONG=1 $(GO) test -race -count=1 -v -run 'TestChaosLong' ./cmd/snakestore

# ingest-smoke drives the daemon's write path end to end under the race
# detector: POST /ingest merge-on-read with delta attribution, validation
# and backlog shedding, the kill-subprocess crash matrix (mid-append,
# mid-compaction, post-catalog-commit), and a reorganization carrying
# pending deltas into the new generation.
ingest-smoke:
	$(GO) test -race -count=1 -run 'TestIngest|TestCrashPointIngestMatrix|TestReorgCarriesDeltas' ./cmd/snakestore

# reorg-smoke exercises the daemon's zero-downtime reorganization path
# once under the race detector: automatic trigger, hot swap under load,
# crash recovery, and the failure/cancellation paths.
reorg-smoke:
	$(GO) test -race -count=1 -run 'TestServeAdaptive|TestServeReorg' ./cmd/snakestore

# staticcheck is optional tooling: run it when installed, skip quietly
# when not (the container has no network to fetch it).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
