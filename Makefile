GO ?= go

.PHONY: check fmt vet build test race fuzz

# check is the tier-1 verification gate (see ROADMAP.md): formatting,
# static analysis, a full build, and the test suite under the race
# detector. Fuzz seed corpora run as ordinary tests.
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short bounded fuzz session over the catalog round-trip property.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzCatalogRoundTrip -fuzztime=10s ./cmd/snakestore
