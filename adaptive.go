package snakes

import (
	"context"
	"fmt"
	"time"

	"repro/internal/adaptive"
	"repro/internal/storage"
	"repro/internal/workload"
)

// DecayingEstimator is an Estimator whose observations lose half their
// weight every half-life, so the estimate tracks the live workload instead
// of all history: the input the adaptive reorganizer feeds the optimizer.
// Safe for concurrent use.
type DecayingEstimator struct {
	schema *Schema
	e      *workload.DecayingEstimator
}

// NewDecayingEstimator returns an empty decayed estimator for the schema;
// halfLife = 0 disables time decay (use Decay for explicit epochs).
func (s *Schema) NewDecayingEstimator(halfLife time.Duration) (*DecayingEstimator, error) {
	e, err := workload.NewDecayingEstimator(s.lat, halfLife)
	if err != nil {
		return nil, err
	}
	return &DecayingEstimator{schema: s, e: e}, nil
}

// Observe records one query of the given class at the current time.
func (e *DecayingEstimator) Observe(c Class) error { return e.e.Observe(c) }

// Decay applies one explicit decay step with factor in (0, 1].
func (e *DecayingEstimator) Decay(factor float64) error { return e.e.Decay(factor) }

// Total returns the raw (undecayed) observation count.
func (e *DecayingEstimator) Total() uint64 { return e.e.Total() }

// Weight returns the decayed observation mass — the effective sample size.
func (e *DecayingEstimator) Weight() float64 { return e.e.Weight() }

// Workload returns the decayed estimate with additive smoothing.
func (e *DecayingEstimator) Workload(smoothing float64) (*Workload, error) {
	w, err := e.e.Workload(smoothing)
	if err != nil {
		return nil, err
	}
	return &Workload{schema: e.schema, w: w}, nil
}

// Drifted reports whether the decayed distribution has moved more than
// threshold (total-variation) from the baseline.
func (e *DecayingEstimator) Drifted(baseline *Workload, smoothing, threshold float64) (bool, float64, error) {
	return e.e.Drifted(baseline.w, smoothing, threshold)
}

// ClassOfRegion returns the query class of a region: per dimension, the
// lowest hierarchy level whose node blocks cover the range in one piece.
// Node-aligned regions (the paper's grid queries) map back to exactly the
// class they came from; unaligned ranges are attributed to the smallest
// enclosing node. This is how the serve path turns an incoming region into
// the class it feeds the workload tracker.
func (s *Schema) ClassOfRegion(r Region) (Class, error) {
	dims := s.schema.Dims
	if len(r) != len(dims) {
		return nil, fmt.Errorf("snakes: region has %d dimensions, schema has %d", len(r), len(dims))
	}
	c := make(Class, len(dims))
	for d, rng := range r {
		leaves := dims[d].Leaves()
		if rng.Lo < 0 || rng.Hi > leaves || rng.Lo >= rng.Hi {
			return nil, fmt.Errorf("snakes: dimension %d range [%d,%d) outside [0,%d)", d, rng.Lo, rng.Hi, leaves)
		}
		lv := 0
		for lv < dims[d].Levels() {
			bs := dims[d].BlockSize(lv)
			if rng.Lo/bs == (rng.Hi-1)/bs {
				break
			}
			lv++
		}
		c[d] = lv
	}
	return c, nil
}

// MigrateCtx physically re-clusters a file store onto this strategy's
// order, writing the new store at newPath. Cancellation is honored between
// cells and progress, when non-nil, is reported after each copied cell; on
// any failure (including cancellation) the partial output is deleted.
func (st *Strategy) MigrateCtx(ctx context.Context, old *FileStore, newPath string, poolFrames int, progress func(done, total int)) (*FileStore, error) {
	o, err := st.Materialize()
	if err != nil {
		return nil, err
	}
	return storage.MigrateCtx(ctx, old, newPath, o, poolFrames, progress)
}

// ReorgConfig tunes the adaptive reorganizer's decision policy; see
// DefaultReorgConfig for a production-shaped baseline.
type ReorgConfig = adaptive.Config

// DefaultReorgConfig returns the conservative default policy.
func DefaultReorgConfig() ReorgConfig { return adaptive.Defaults() }

// ReorgStatus is the reorganizer's externally visible state, shaped for a
// status endpoint.
type ReorgStatus = adaptive.Status

// ReorgEvaluation is one regret measurement, delivered to OnEvaluate.
type ReorgEvaluation = adaptive.Evaluation

// ErrReorgInProgress is returned by Trigger while a reorganization is
// already running; reorganizations are strictly serialized.
var ErrReorgInProgress = adaptive.ErrReorgInProgress

// ReorgSkipped reports whether a Trigger error means the policy declined
// (regret under threshold, hysteresis window open, or too little evidence)
// rather than a migration failure.
func ReorgSkipped(err error) bool { return adaptive.Skipped(err) }

// ReorgDecision is what the reorganizer hands the migrator when the policy
// fires: the new strategy, the evidence behind it, and the generation the
// new store assumes on success. The migrator must call Progress as it
// copies cells so status reporting can show completion.
type ReorgDecision struct {
	Strategy    *Strategy
	Workload    *Workload
	CurrentCost float64
	OptimalCost float64
	Regret      float64
	Generation  int
	Pacing      ReorgPacing
	Progress    func(done, total int)
}

// ReorgPacing is the I/O budget a decision hands the incremental migrator
// (regions per scoring window, cells per tick, pause between ticks); see
// Strategy.MigrateRegionsCtx.
type ReorgPacing = adaptive.Pacing

// ReorgMigrator executes a reorganization decision: build the new
// generation (typically Strategy.MigrateCtx), persist metadata, swap the
// serving store, clean up. A nil error commits the reorganizer to the
// decision; any error leaves it on the old generation.
type ReorgMigrator func(ctx context.Context, d *ReorgDecision) error

// Reorganizer closes the loop between the optimizer and a serving store:
// it learns the live class distribution (decayed), recomputes the optimal
// strategy, and invokes the migrator when the deployed strategy's expected
// cost exceeds the optimum's by the configured regret factor, sustained
// across the hysteresis window. Observe is safe from every serving
// goroutine; Run, Trigger, and Status may be used concurrently with it.
type Reorganizer struct {
	schema *Schema
	c      *adaptive.Controller
}

// NewReorganizer returns a reorganizer deployed on the given strategy and
// generation.
func NewReorganizer(st *Strategy, generation int, migrate ReorgMigrator, cfg ReorgConfig) (*Reorganizer, error) {
	if migrate == nil {
		return nil, fmt.Errorf("snakes: nil reorg migrator")
	}
	r := &Reorganizer{schema: st.schema}
	inner := func(ctx context.Context, d *adaptive.Decision) error {
		return migrate(ctx, &ReorgDecision{
			Strategy:    &Strategy{schema: st.schema, Path: d.Path, Snaked: d.Snaked},
			Workload:    &Workload{schema: st.schema, w: d.Workload},
			CurrentCost: d.CurrentCost,
			OptimalCost: d.OptimalCost,
			Regret:      d.Regret,
			Generation:  d.Generation,
			Pacing:      d.Pacing,
			Progress:    d.Progress,
		})
	}
	c, err := adaptive.New(st.schema.lat, st.Path, st.Snaked, generation, inner, cfg)
	if err != nil {
		return nil, err
	}
	r.c = c
	return r, nil
}

// Observe records one served query of the given class.
func (r *Reorganizer) Observe(c Class) error { return r.c.Observe(c) }

// ObserveRegion attributes a served region to its class and records it.
func (r *Reorganizer) ObserveRegion(reg Region) error {
	c, err := r.schema.ClassOfRegion(reg)
	if err != nil {
		return err
	}
	return r.c.Observe(c)
}

// Generation returns the currently deployed strategy generation.
func (r *Reorganizer) Generation() int { return r.c.Generation() }

// Strategy returns the currently deployed strategy.
func (r *Reorganizer) Strategy() *Strategy {
	p, snaked := r.c.Strategy()
	return &Strategy{schema: r.schema, Path: p, Snaked: snaked}
}

// Status snapshots the reorganizer's state.
func (r *Reorganizer) Status() ReorgStatus { return r.c.Status() }

// OnEvaluate installs a hook observing every policy evaluation (e.g. a
// regret gauge). Install hooks before Run or Trigger.
func (r *Reorganizer) OnEvaluate(fn func(ReorgEvaluation)) { r.c.OnEvaluate = fn }

// OnReorg installs a hook observing every reorganization outcome
// ("success", "failed", or "canceled") and its duration.
func (r *Reorganizer) OnReorg(fn func(outcome string, d time.Duration)) { r.c.OnReorg = fn }

// SetCostCorrection installs a hook that scales the deployed strategy's
// analytic cost by a live observed/predicted ratio before regret is
// computed — typically Calibration.SeekCorrection, so a buffer pool or
// delta overlay that absorbs predicted seeks weakens the case for
// migrating. Returns <= 0, NaN, or Inf are ignored. Install before Run
// or Trigger.
func (r *Reorganizer) SetCostCorrection(fn func() float64) { r.c.CostCorrection = fn }

// Run evaluates the policy every CheckInterval until ctx ends,
// reorganizing when it fires; evaluation and migration errors are absorbed
// into Status (the loop keeps running).
func (r *Reorganizer) Run(ctx context.Context) { r.c.Run(ctx) }

// Trigger forces one policy step now; with force the thresholds are
// bypassed and the current optimum deployed unconditionally. Returns the
// decision acted on, or an error for which ReorgSkipped reports whether
// the policy merely declined.
func (r *Reorganizer) Trigger(ctx context.Context, force bool) (*ReorgDecision, error) {
	d, err := r.c.Trigger(ctx, force)
	if d == nil {
		return nil, err
	}
	return &ReorgDecision{
		Strategy:    &Strategy{schema: r.schema, Path: d.Path, Snaked: d.Snaked},
		Workload:    &Workload{schema: r.schema, w: d.Workload},
		CurrentCost: d.CurrentCost,
		OptimalCost: d.OptimalCost,
		Regret:      d.Regret,
		Generation:  d.Generation,
		Pacing:      d.Pacing,
		Progress:    d.Progress,
	}, err
}
