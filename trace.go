package snakes

import (
	"context"

	"repro/internal/trace"
)

// Trace re-exports the request-tracing subsystem: a Trace is a tree of
// timed spans carried on a context through the read and reorganization
// paths, retained by a TraceRecorder under head sampling plus tail-based
// always-keep for slow and errored requests. The serve daemon exposes
// retained traces on /debug/traces.
type Trace = trace.Trace

// TraceSpan is one timed node of a trace's span tree.
type TraceSpan = trace.Span

// TraceSpanRef is a live handle to an open span; the zero value (and any
// ref from an untraced context) is inert, so instrumentation needs no nil
// checks.
type TraceSpanRef = trace.SpanRef

// TraceAttr is one integer attribute attached to a span.
type TraceAttr = trace.Attr

// TraceConfig tunes a TraceRecorder; the zero value records nothing.
type TraceConfig = trace.Config

// TraceRecorder decides which requests to trace and retains finished
// traces. Nil-safe: a nil recorder traces nothing at zero cost.
type TraceRecorder = trace.Recorder

// TraceResult is Finish's retention verdict on one trace.
type TraceResult = trace.Result

// TraceStats counts a recorder's retention decisions.
type TraceStats = trace.Stats

// TraceSummary and TraceDetail are the JSON renderings used by
// /debug/traces.
type (
	TraceSummary = trace.Summary
	TraceDetail  = trace.Detail
)

// Span kinds recorded by the instrumented paths.
const (
	TraceKindRequest       = trace.KindRequest
	TraceKindAdmission     = trace.KindAdmission
	TraceKindFragment      = trace.KindFragment
	TraceKindPageLoad      = trace.KindPageLoad
	TraceKindRetry         = trace.KindRetry
	TraceKindDP            = trace.KindDP
	TraceKindMigrate       = trace.KindMigrate
	TraceKindCopy          = trace.KindCopy
	TraceKindFlush         = trace.KindFlush
	TraceKindCatalogCommit = trace.KindCatalogCommit
	TraceKindSwap          = trace.KindSwap
	TraceKindDrain         = trace.KindDrain
	TraceKindVerify        = trace.KindVerify
	TraceKindScrub         = trace.KindScrub
	TraceKindRepair        = trace.KindRepair
	TraceKindCompact       = trace.KindCompact
	TraceKindDeltaAppend   = trace.KindDeltaAppend
)

// TraceSpanKinds returns every span kind the instrumented paths record —
// the closed label set for per-kind metrics.
func TraceSpanKinds() []string { return trace.Kinds() }

// NewTraceRecorder builds a recorder; see TraceConfig for the policy.
func NewTraceRecorder(cfg TraceConfig) *TraceRecorder { return trace.NewRecorder(cfg) }

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace { return trace.FromContext(ctx) }

// StartTraceSpan opens a child span of ctx's current span and returns the
// derived context (so further spans nest under it). On an untraced context
// it returns ctx unchanged and an inert ref, allocation-free.
func StartTraceSpan(ctx context.Context, kind, name string) (context.Context, TraceSpanRef) {
	return trace.Start(ctx, kind, name)
}

// StartTraceLeaf opens a child span without deriving a context, for spans
// that will have no children of their own.
func StartTraceLeaf(ctx context.Context, kind, name string) TraceSpanRef {
	return trace.StartLeaf(ctx, kind, name)
}
