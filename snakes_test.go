package snakes

import (
	"math"
	"testing"
)

func exampleSchema() *Schema {
	return NewSchema(Dim("jeans", 2, 2), Dim("location", 2, 2))
}

func TestSchemaBasics(t *testing.T) {
	s := exampleSchema()
	if got := s.NumCells(); got != 16 {
		t.Errorf("NumCells = %d, want 16", got)
	}
	if got := s.NumClasses(); got != 9 {
		t.Errorf("NumClasses = %d, want 9", got)
	}
	if got := len(s.Classes()); got != 9 {
		t.Errorf("len(Classes) = %d, want 9", got)
	}
	if _, err := BuildSchema(); err == nil {
		t.Error("empty schema should fail")
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	s := exampleSchema()
	w := s.UniformWorkload()
	st, err := Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Snaked {
		t.Error("Optimize should return a snaked strategy")
	}
	c, err := st.ExpectedCost(w)
	if err != nil {
		t.Fatal(err)
	}
	unsnaked, err := OptimizeUnsnaked(w)
	if err != nil {
		t.Fatal(err)
	}
	cu, err := unsnaked.ExpectedCost(w)
	if err != nil {
		t.Fatal(err)
	}
	if c > cu+1e-12 {
		t.Errorf("snaked cost %v > unsnaked %v", c, cu)
	}
	// Theorem 3: unsnaked/snaked < 2.
	if cu/c >= 2 {
		t.Errorf("snaking benefit %v ≥ 2", cu/c)
	}
	o, err := st.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 16 {
		t.Errorf("order length %d", o.Len())
	}
}

func TestWorkloadRoundTrip(t *testing.T) {
	s := exampleSchema()
	w := s.NewWorkload()
	w.Set(Class{0, 1}, 3)
	w.Set(Class{2, 2}, 1)
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := w.Prob(Class{0, 1}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Prob = %v, want 0.75", got)
	}
}

func TestRowMajorAndExplicitPaths(t *testing.T) {
	s := exampleSchema()
	rm, err := s.RowMajor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.PathStrategy([]int{1, 1, 0, 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	if rm.String() != p.String() {
		t.Errorf("row major %v ≠ explicit path %v", rm, p)
	}
	if _, err := s.PathStrategy([]int{0, 0}, false); err == nil {
		t.Error("short path should fail")
	}
}

func TestCurvesAndEvaluateOrder(t *testing.T) {
	s := exampleSchema()
	w := s.UniformWorkload()
	h, err := s.Hilbert()
	if err != nil {
		t.Fatal(err)
	}
	z, err := s.ZOrder()
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.GrayOrder()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	co, err := opt.ExpectedCost(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []*Order{h, z, g} {
		if c := s.EvaluateOrder(o, w); c < co-1e-9 {
			t.Errorf("%s cost %v beats the optimal snaked lattice path %v (contradicts Theorem 2)", o.Name, c, co)
		}
	}
}

func TestSnakingBenefitBounds(t *testing.T) {
	s := exampleSchema()
	st, err := s.RowMajor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range s.Classes() {
		b := st.SnakingBenefit(c)
		if b < 1-1e-12 || b >= 2 {
			t.Errorf("benefit(%v) = %v out of [1,2)", c, b)
		}
	}
}

func TestPackAndQuery(t *testing.T) {
	s := exampleSchema()
	w := s.ClassWorkload(Class{0, 2}) // whole-location queries about one jean
	st, err := Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]int64, s.NumCells())
	for i := range bytes {
		bytes[i] = 125
	}
	layout, err := st.Pack(bytes, 125) // one cell per page
	if err != nil {
		t.Fatal(err)
	}
	if layout.TotalPages() != 16 {
		t.Errorf("TotalPages = %d, want 16", layout.TotalPages())
	}
	// A class-(0,2) query (one jeans leaf, all locations) should be one
	// seek: the optimal path for this workload keeps those cells together.
	stq := layout.Query(Region{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 4}})
	if stq.Seeks != 1 {
		t.Errorf("Seeks = %d, want 1 under the optimized layout", stq.Seeks)
	}
}

func TestMismatchedSchemaRejected(t *testing.T) {
	s1 := exampleSchema()
	s2 := NewSchema(Dim("x", 2, 2), Dim("y", 2, 2))
	st, err := Optimize(s1.UniformWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExpectedCost(s2.UniformWorkload()); err == nil {
		t.Error("cross-schema evaluation should fail")
	}
}

func TestUnbalancedTreeToDimension(t *testing.T) {
	tr, err := NewTree("location", Branch("all",
		Branch("NY", Leaf("nyc"), Leaf("albany")),
		Leaf("DC"),
	))
	if err != nil {
		t.Fatal(err)
	}
	dim, _, err := tr.Balance().Dimension()
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSchema(dim, Dim("product", 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(s.UniformWorkload()); err != nil {
		t.Fatal(err)
	}
}
